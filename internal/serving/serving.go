// Package serving implements a discrete-event inference-server simulator
// for the paper's online case study (§7.1, Figure 9(c)): Poisson/bursty
// request arrivals, FIFO queueing, FLOPs-proportional service times, and
// four serving configurations — a fixed-model baseline, the ideal
// scale-out optimization, Sommelier-driven automatic model switching, and
// scale-out combined with switching.
//
// The substitution from real GPU serving is documented in DESIGN.md: the
// paper itself notes DNN inference latency is predictable from model
// size, so a service time proportional to model FLOPs reproduces the
// queueing dynamics that generate the tail-latency results.
//
// The configuration surface is ctx-first with functional options:
// NewSimulator(WithPolicy(...), WithServers(...), ...).Run(ctx, w). The
// pre-redesign entry points (Simulate, SimulateWithFailures,
// SimulateRacing, RunComparison…) remain as Deprecated wrappers. The
// cluster-scale generalization — many instances behind pluggable
// routing and admission control — lives in the serving/cluster
// subpackage.
package serving

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sommelier/internal/faults"
	"sommelier/internal/stats"
	"sommelier/internal/tensor"
)

// ModelChoice is one deployable model: an identity plus its service cost
// and quality level relative to the flagship model.
type ModelChoice struct {
	ID string
	// ServiceMS is the model's single-request service time.
	ServiceMS float64
	// Level is its functional-equivalence level to the flagship.
	Level float64
}

// Workload describes the arrival process.
//
// The struct is frozen (sommlint optcheck): new workload knobs belong on
// the serving/cluster generator config or as Simulator options, not
// here — a field added here would be silently ignored by every
// pre-redesign call site.
type Workload struct {
	// Requests is the total number of arrivals to simulate.
	Requests int
	// MeanArrivalMS is the mean inter-arrival gap of the Poisson
	// process during normal operation.
	MeanArrivalMS float64
	// Burst injects heavy-load phases: every BurstEvery requests, a
	// burst of BurstLen requests arrives with gaps divided by
	// BurstFactor.
	BurstEvery, BurstLen int
	BurstFactor          float64
	Seed                 uint64
}

// Policy selects which model serves a request given current conditions.
type Policy interface {
	// Choose returns the model for a request seeing queueLen requests
	// ahead of it.
	Choose(queueLen int) ModelChoice
	Name() string
}

// FixedPolicy always serves the flagship model — the paper's baseline
// where the developer hardcodes one model.
type FixedPolicy struct{ Model ModelChoice }

func (p FixedPolicy) Choose(int) ModelChoice { return p.Model }
func (p FixedPolicy) Name() string           { return "fixed" }

// SwitchingPolicy implements Sommelier-driven automatic model switching:
// under light load it serves the highest-quality model; as the queue
// grows it re-queries for progressively more compact equivalents. The
// Candidates list plays the role of the pre-registered equivalents a
// Sommelier query returns (highest quality first); Thresholds[i] is the
// queue length at which the policy steps down to Candidates[i+1].
type SwitchingPolicy struct {
	Candidates []ModelChoice
	Thresholds []int
}

// NewSwitchingPolicy builds a policy stepping through the candidates at
// evenly spaced queue thresholds (step, 2·step, ...).
func NewSwitchingPolicy(candidates []ModelChoice, step int) (*SwitchingPolicy, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("serving: switching policy needs candidates")
	}
	if step <= 0 {
		step = 4
	}
	thresholds := make([]int, len(candidates)-1)
	for i := range thresholds {
		thresholds[i] = (i + 1) * step
	}
	return &SwitchingPolicy{Candidates: candidates, Thresholds: thresholds}, nil
}

func (p *SwitchingPolicy) Choose(queueLen int) ModelChoice {
	idx := 0
	for idx < len(p.Thresholds) && queueLen >= p.Thresholds[idx] {
		idx++
	}
	return p.Candidates[idx]
}

func (p *SwitchingPolicy) Name() string { return "sommelier-switching" }

// Result is the outcome of one simulation run.
type Result struct {
	PolicyName string
	Servers    int
	// Latencies are per-request end-to-end latencies (queue + service)
	// in milliseconds, in arrival order.
	Latencies []float64
	// ModelShare counts requests served per model ID.
	ModelShare map[string]int
	// MeanLevel is the average equivalence level of the serving model
	// across requests — the accuracy cost of switching.
	MeanLevel float64
	// SwitchAttempts counts requests whose policy choice differed from
	// the model deployed on the serving server, i.e. attempted model
	// switches; FailedSwitches is how many of those the failure model
	// rejected (the request was then served by the previously deployed
	// model — graceful degradation, not an error).
	SwitchAttempts, FailedSwitches int
}

// Summary returns latency percentiles.
func (r Result) Summary() stats.Summary { return stats.Summarize(r.Latencies) }

// Arrivals generates the workload's request arrival times in
// milliseconds — the exact stream the simulator replays — so other
// harnesses (the serving/cluster simulator, trace writers) can feed
// byte-identical arrivals without re-deriving the generator.
func Arrivals(w Workload) []float64 { return arrivals(w) }

// arrivals generates the request arrival times for a workload.
func arrivals(w Workload) []float64 {
	rng := tensor.NewRNG(w.Seed + 0xa221)
	times := make([]float64, w.Requests)
	t := 0.0
	burstLeft := 0
	for i := 0; i < w.Requests; i++ {
		gap := w.MeanArrivalMS * rng.ExpFloat64()
		if w.BurstEvery > 0 && i > 0 && i%w.BurstEvery == 0 {
			burstLeft = w.BurstLen
		}
		if burstLeft > 0 && w.BurstFactor > 1 {
			gap /= w.BurstFactor
			burstLeft--
		}
		t += gap
		times[i] = t
	}
	return times
}

// ctxCheckEvery is how many arrivals the event loops process between
// context checks — cheap enough to be invisible, frequent enough that
// cancellation lands promptly.
const ctxCheckEvery = 1024

// Simulate runs the workload against `servers` identical servers using
// the policy with switches always succeeding.
//
// Deprecated: use NewSimulator(WithPolicy(policy),
// WithServers(servers)) and Run with a caller context.
func Simulate(w Workload, policy Policy, servers int) (Result, error) {
	sim, err := NewSimulator(WithPolicy(policy), WithServers(servers))
	if err != nil {
		return Result{}, err
	}
	return sim.Run(context.Background(), w)
}

// runSim is the core discrete-event loop, shared by every
// fixed-and-switching entry point. Requests join the shortest backlog
// (join-shortest-queue, the paper's even distribution under heavy
// load); each server is a FIFO processor. Switch faults are drawn from
// the resolved faults.Schedule: one decision per switch attempt, from
// the attempted server's own SwitchTarget stream.
func runSim(ctx context.Context, cfg simConfig, w Workload) (Result, error) {
	if w.Requests <= 0 || w.MeanArrivalMS <= 0 {
		return Result{}, fmt.Errorf("serving: workload needs positive requests and arrival gap")
	}
	if w.Seed == 0 {
		w.Seed = cfg.seed
	}
	servers := cfg.servers
	policy := cfg.policy
	sched := switchSchedule(cfg)
	arr := arrivals(w)
	// deployed[s] is the model currently installed on server s; a
	// policy choice differing from it is a switch attempt, which the
	// fault schedule may reject (the request then runs on the old model)
	// or slow (the load delay lands on the switched request).
	deployed := make([]ModelChoice, servers)
	haveDeployed := make([]bool, servers)
	// freeAt[s] is when server s finishes its backlog; backlog[s] holds
	// the finish times of requests assigned and not finished at the
	// current arrival.
	freeAt := make([]float64, servers)
	type pending struct{ finish float64 }
	backlog := make([][]pending, servers)

	res := Result{
		PolicyName: policy.Name(),
		Servers:    servers,
		Latencies:  make([]float64, 0, w.Requests),
		ModelShare: make(map[string]int),
	}
	var levelSum float64

	for i, at := range arr {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("serving: simulation aborted: %w", err)
			}
		}
		// Retire finished work from backlogs.
		for s := range backlog {
			q := backlog[s]
			for len(q) > 0 && q[0].finish <= at {
				q = q[1:]
			}
			backlog[s] = q
		}
		// Join the shortest queue.
		best := 0
		for s := 1; s < servers; s++ {
			if len(backlog[s]) < len(backlog[best]) {
				best = s
			}
		}
		queueLen := len(backlog[best])
		choice := policy.Choose(queueLen)
		switch {
		case !haveDeployed[best]:
			deployed[best], haveDeployed[best] = choice, true
		case choice.ID != deployed[best].ID:
			res.SwitchAttempts++
			var d faults.Decision
			if sched != nil {
				d = sched.Next(SwitchTarget(best))
			}
			switch d.Kind {
			case faults.None:
				deployed[best] = choice
			case faults.Latency:
				// The switch succeeds but loading the new weights is
				// slow: the switched request absorbs the load delay.
				deployed[best] = choice
				choice.ServiceMS += float64(d.Latency) / float64(time.Millisecond)
			default:
				// ConnError / ServerError / Truncate all mean the new
				// model never arrived: fall back to the running model.
				res.FailedSwitches++
				choice = deployed[best]
			}
		}

		start := at
		if freeAt[best] > start {
			start = freeAt[best]
		}
		finish := start + choice.ServiceMS
		freeAt[best] = finish
		backlog[best] = append(backlog[best], pending{finish: finish})

		res.Latencies = append(res.Latencies, finish-at)
		res.ModelShare[choice.ID]++
		levelSum += choice.Level
	}
	res.MeanLevel = levelSum / float64(len(arr))
	return res, nil
}

// runRacing models the paper's idealized scale-out under light load:
// each request runs on both of two servers and the earlier completion
// counts; under heavy load (any backlog) requests are split evenly. It
// serves a fixed model, matching the "system optimizations only" bar.
func runRacing(ctx context.Context, cfg simConfig, w Workload, model ModelChoice) (Result, error) {
	if w.Requests <= 0 || w.MeanArrivalMS <= 0 {
		return Result{}, fmt.Errorf("serving: workload needs positive requests and arrival gap")
	}
	if w.Seed == 0 {
		w.Seed = cfg.seed
	}
	arr := arrivals(w)
	freeAt := [2]float64{}
	res := Result{
		PolicyName: "scale-out",
		Servers:    2,
		Latencies:  make([]float64, 0, w.Requests),
		ModelShare: map[string]int{model.ID: w.Requests},
		MeanLevel:  model.Level,
	}
	toggle := 0
	for i, at := range arr {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("serving: simulation aborted: %w", err)
			}
		}
		idle0, idle1 := freeAt[0] <= at, freeAt[1] <= at
		if idle0 && idle1 {
			// Light load: race both servers; the earlier (identical
			// service time) wins, both become busy.
			finish := at + model.ServiceMS
			freeAt[0], freeAt[1] = finish, finish
			res.Latencies = append(res.Latencies, model.ServiceMS)
			continue
		}
		// Heavy load: round-robin across both servers.
		s := toggle
		toggle = 1 - toggle
		start := at
		if freeAt[s] > start {
			start = freeAt[s]
		}
		finish := start + model.ServiceMS
		freeAt[s] = finish
		res.Latencies = append(res.Latencies, finish-at)
	}
	return res, nil
}

// SimulateRacing models the idealized two-server scale-out with a fixed
// model.
//
// Deprecated: use NewSimulator(WithPolicy(FixedPolicy{Model: model}))
// and RunRacing with a caller context.
func SimulateRacing(w Workload, model ModelChoice) (Result, error) {
	sim, err := NewSimulator(WithPolicy(FixedPolicy{Model: model}))
	if err != nil {
		return Result{}, err
	}
	return sim.RunRacing(context.Background(), w, model)
}

// Comparison bundles the four Figure 9(c) configurations.
type Comparison struct {
	Baseline, ScaleOut, Switching, Combined Result
}

// RunComparison executes the full Figure 9(c) experiment: the same
// workload under all four configurations, with switches always
// succeeding.
//
// Deprecated: use RunComparisonContext with a caller context (a nil
// observer reproduces this function's behaviour).
func RunComparison(w Workload, candidates []ModelChoice, switchStep int) (Comparison, error) {
	return RunComparisonContext(context.Background(), nil, w, candidates, switchStep, FailureModel{})
}

// SortedModelShare renders a result's per-model request counts in a
// stable order for reports.
func SortedModelShare(r Result) []string {
	ids := make([]string, 0, len(r.ModelShare))
	for id := range r.ModelShare {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = fmt.Sprintf("%s:%d", id, r.ModelShare[id])
	}
	return out
}
