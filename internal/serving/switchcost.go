package serving

import "fmt"

// The paper's footnote 1 observes that the GPU-memory swap incurred when
// switching models "can be mitigated by switching models in the
// background". This file models both sides of that remark: a switch
// penalty added whenever the serving model changes, and the two
// mitigations an operator has — hysteresis (switch less often) and
// background preloading (hide the swap off the critical path).

// SwitchCostPolicy wraps a policy and accounts for model-swap overhead.
type SwitchCostPolicy struct {
	// Inner chooses the desired model for the current conditions.
	Inner Policy
	// SwapMS is the one-time penalty for serving a different model than
	// the previous request used (loading weights into device memory).
	SwapMS float64
	// Background hides the swap off the critical path (the paper's
	// mitigation): the penalized request is served by the old model
	// while the new one loads, so no request pays SwapMS, but the
	// switch takes effect one request late.
	Background bool
	// Hysteresis requires the inner policy to pick the same new model
	// this many consecutive times before the switch happens, damping
	// flapping around a queue threshold. Zero switches immediately.
	Hysteresis int

	current   ModelChoice
	candidate string
	streak    int
	started   bool
	// pendingSwap carries the swap penalty into the next request's
	// service time for foreground swaps.
	pendingSwap float64
}

// NewSwitchCostPolicy wraps inner with swap accounting.
func NewSwitchCostPolicy(inner Policy, swapMS float64, background bool, hysteresis int) (*SwitchCostPolicy, error) {
	if inner == nil {
		return nil, fmt.Errorf("serving: switch-cost policy needs an inner policy")
	}
	if swapMS < 0 || hysteresis < 0 {
		return nil, fmt.Errorf("serving: negative swap cost or hysteresis")
	}
	return &SwitchCostPolicy{Inner: inner, SwapMS: swapMS, Background: background, Hysteresis: hysteresis}, nil
}

// Choose implements Policy. The returned choice's ServiceMS includes any
// foreground swap penalty for this request.
func (p *SwitchCostPolicy) Choose(queueLen int) ModelChoice {
	want := p.Inner.Choose(queueLen)
	if !p.started {
		p.started = true
		p.current = want
		p.candidate = want.ID
		return p.current
	}

	if want.ID != p.current.ID {
		if want.ID == p.candidate {
			p.streak++
		} else {
			p.candidate = want.ID
			p.streak = 1
		}
		if p.streak > p.Hysteresis {
			p.streak = 0
			if p.Background {
				// The new model loads off the critical path; this
				// request is still served by the old model at its
				// normal cost, and the switch lands afterwards.
				old := p.current
				p.current = want
				return old
			}
			p.current = want
			p.pendingSwap = p.SwapMS
		}
	} else {
		p.candidate = want.ID
		p.streak = 0
	}

	out := p.current
	out.ServiceMS += p.pendingSwap
	p.pendingSwap = 0
	return out
}

// Name implements Policy.
func (p *SwitchCostPolicy) Name() string {
	mode := "fg-swap"
	if p.Background {
		mode = "bg-swap"
	}
	return p.Inner.Name() + "+" + mode
}

// Note: the number of switches is not recoverable from a Result's
// model-share map; to quantify swap overhead, compare latency
// distributions across SwapMS settings (see the switch-cost ablation).
