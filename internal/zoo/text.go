package zoo

import (
	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// TextConfig scales a text-classification model (the NLP side of the
// paper's evaluation: sentiment analysis, Q&A, NER all reduce to
// token-sequence classification at this substrate's granularity).
type TextConfig struct {
	Name    string
	Seed    uint64
	SeqLen  int // tokens per input
	Vocab   int
	EmbedD  int
	Hidden  int
	Classes int
	Series  string
}

func (c TextConfig) defaults() TextConfig {
	if c.SeqLen == 0 {
		c.SeqLen = 12
	}
	if c.Vocab == 0 {
		c.Vocab = 64
	}
	if c.EmbedD == 0 {
		c.EmbedD = 16
	}
	if c.Hidden == 0 {
		c.Hidden = 24
	}
	if c.Classes == 0 {
		c.Classes = 4
	}
	return c
}

// TextClassifierNet builds an Embedding → mean-pool → Dense classifier,
// the standard fastText-style text model: inputs are rank-1 tensors of
// token ids (as floats), length SeqLen.
func TextClassifierNet(cfg TextConfig) (*graph.Model, error) {
	cfg = cfg.defaults()
	b := graph.NewBuilder(cfg.Name, graph.TaskClassification,
		tensor.Shape{cfg.SeqLen}, tensor.NewRNG(cfg.Seed))
	b.Add(graph.OpEmbedding, graph.Attrs{VocabSize: cfg.Vocab, EmbedDim: cfg.EmbedD})
	// Mean over the sequence: embedding output is [SeqLen, EmbedD];
	// flatten and project. (GlobalAvgPool averages trailing dims per
	// leading index, which would pool the wrong axis here.)
	b.Flatten()
	b.Dense(cfg.Hidden)
	b.Tanh()
	b.Dense(cfg.Classes)
	b.Softmax()
	b.Labels(Classes(cfg.Classes))
	b.Meta("family", "text")
	b.Meta("series", cfg.Series)
	return b.Build()
}

// TextCohort builds a teacher text model plus k calibrated variants —
// the NLP counterpart of CorrelatedCohort, with token-valued probes.
func TextCohort(cfg TextConfig, k int, variantDiff float64, seed uint64) (*Cohort, error) {
	cfg = cfg.defaults()
	cfg.Name = "text-teacher"
	teacher, err := TextClassifierNet(cfg)
	if err != nil {
		return nil, err
	}
	probes := TokenProbes(300, cfg.SeqLen, cfg.Vocab, seed+1)
	cohort := &Cohort{Teacher: teacher, TrueDiff: make(map[string]float64)}
	names := []string{"bertish", "robertaish", "distilbertish", "albertish"}
	for i := 0; i < k; i++ {
		name := "text-v" + Classes(k)[i][5:]
		if i < len(names) {
			name = names[i]
		}
		v, dis, err := CalibratedVariant(teacher, name, variantDiff, probes, seed+10+uint64(i))
		if err != nil {
			return nil, err
		}
		cohort.Models = append(cohort.Models, v)
		cohort.TrueDiff[name] = dis
	}
	return cohort, nil
}

// TokenProbes generates n random token-id sequences in [0, vocab).
func TokenProbes(n, seqLen, vocab int, seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(seqLen)
		for j := range t.Data() {
			t.Data()[j] = float64(rng.Intn(vocab))
		}
		out[i] = t
	}
	return out
}
