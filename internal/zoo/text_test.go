package zoo

import (
	"math"
	"testing"

	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

func TestTextClassifierBuildsAndRuns(t *testing.T) {
	m, err := TextClassifierNet(TextConfig{Name: "txt", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := nn.NewExecutor(m)
	if err != nil {
		t.Fatal(err)
	}
	probes := TokenProbes(10, 12, 64, 2)
	for _, p := range probes {
		out, err := e.Forward(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(out.Sum()-1) > 1e-9 {
			t.Fatalf("output not a distribution: %g", out.Sum())
		}
	}
}

func TestTokenProbesInRange(t *testing.T) {
	probes := TokenProbes(20, 8, 16, 3)
	if len(probes) != 20 {
		t.Fatalf("len = %d", len(probes))
	}
	for _, p := range probes {
		if !p.Shape().Equal(tensor.Shape{8}) {
			t.Fatalf("shape %v", p.Shape())
		}
		for _, v := range p.Data() {
			if v < 0 || v >= 16 || v != math.Trunc(v) {
				t.Fatalf("token id %g out of range", v)
			}
		}
	}
}

func TestTextCohortCorrelation(t *testing.T) {
	cohort, err := TextCohort(TextConfig{Seed: 4}, 3, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cohort.Models) != 3 {
		t.Fatalf("cohort size %d", len(cohort.Models))
	}
	if cohort.Models[0].Name != "bertish" {
		t.Fatalf("name %q", cohort.Models[0].Name)
	}
	// Variants must land near the requested disagreement.
	for name, dis := range cohort.TrueDiff {
		if math.Abs(dis-0.1) > 0.06 {
			t.Fatalf("%s calibrated to %g, want ~0.1", name, dis)
		}
	}
	// Different task shape than the CV families: token-id inputs.
	if !cohort.Teacher.InputShape.Equal(tensor.Shape{12}) {
		t.Fatalf("teacher input %v", cohort.Teacher.InputShape)
	}
}
