package zoo

import (
	"fmt"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Inflate widens a dense-family model from hidden width oldW to newW,
// embedding the original weights in the top-left block of each enlarged
// matrix and filling the new rows/columns with near-zero noise. The
// resulting model computes (approximately) the same function while its
// parameter count, FLOPs, and memory grow with the new width — exactly
// how the reproduction builds size ladders whose rungs share behaviour
// but differ in resource profile (BiT-like and EfficientNet-like series).
//
// Only hidden dimensions equal to oldW are widened; the input stem and
// classifier head keep their external dimensions.
func Inflate(m *graph.Model, name string, oldW, newW int, seed uint64) (*graph.Model, error) {
	if newW < oldW {
		return nil, fmt.Errorf("zoo: Inflate cannot shrink (%d -> %d)", oldW, newW)
	}
	c := m.Clone()
	c.Name = name
	if newW == oldW {
		return c, nil
	}
	rng := tensor.NewRNG(seed)
	const eps = 1e-3 // new-unit weight scale: small enough to barely move outputs

	grow := func(dim int) int {
		if dim == oldW {
			return newW
		}
		return dim
	}

	for _, l := range c.Layers {
		switch l.Op {
		case graph.OpDense:
			w := l.Param("W")
			out, in := w.Shape()[0], w.Shape()[1]
			nOut, nIn := grow(out), grow(in)
			if nOut == out && nIn == in {
				continue
			}
			nw := tensor.New(nOut, nIn)
			rng.FillNormal(nw, 0, eps)
			for i := 0; i < out; i++ {
				copy(nw.Data()[i*nIn:i*nIn+in], w.Data()[i*in:(i+1)*in])
			}
			l.Params["W"] = nw
			b := l.Param("B")
			nb := tensor.New(nOut)
			copy(nb.Data(), b.Data())
			l.Params["B"] = nb
			l.Attrs.Units = nOut
		case graph.OpBatchNorm:
			inflateNormParams(l, oldW, newW)
		case graph.OpLayerNorm:
			inflateNormParams(l, oldW, newW)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("zoo: inflated model invalid: %w", err)
	}
	if c.Metadata == nil {
		c.Metadata = map[string]string{}
	}
	c.Metadata["inflated-from"] = m.Name
	c.Metadata["width"] = fmt.Sprint(newW)
	return c, nil
}

func inflateNormParams(l *graph.Layer, oldW, newW int) {
	for name, p := range l.Params {
		if p.Shape().Rank() != 1 || p.Shape()[0] != oldW {
			continue
		}
		np := tensor.New(newW)
		switch name {
		case "Gamma", "Var":
			np.Fill(1)
		}
		copy(np.Data(), p.Data())
		l.Params[name] = np
	}
}
