package zoo

import (
	"math"
	"testing"

	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/resource"
	"sommelier/internal/tensor"
)

func TestAllFamiliesBuildAndRun(t *testing.T) {
	for _, fam := range Families() {
		m, err := Build(fam, Config{Name: "f-" + fam, Seed: 3})
		if err != nil {
			t.Fatalf("building %s: %v", fam, err)
		}
		e, err := nn.NewExecutor(m)
		if err != nil {
			t.Fatalf("executor %s: %v", fam, err)
		}
		x := tensor.New(m.InputShape...)
		tensor.NewRNG(1).FillNormal(x, 0, 1)
		out, err := e.Forward(x)
		if err != nil {
			t.Fatalf("forward %s: %v", fam, err)
		}
		if math.Abs(out.Sum()-1) > 1e-9 {
			t.Fatalf("%s output not a distribution: sum=%g", fam, out.Sum())
		}
	}
}

func TestBuildUnknownFamily(t *testing.T) {
	if _, err := Build("alexnet", Config{}); err == nil {
		t.Fatal("expected unknown-family error")
	}
}

func TestPerturbZeroIsClone(t *testing.T) {
	m, err := DenseResidualNet(Config{Name: "p", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := Perturb(m, "v", 0, 2)
	if v.Name != "v" {
		t.Fatalf("name = %q", v.Name)
	}
	for _, l := range m.Layers {
		for pname, p := range l.Params {
			if tensor.L2Distance(p, v.Layer(l.Name).Param(pname)) != 0 {
				t.Fatalf("zero perturbation changed %s/%s", l.Name, pname)
			}
		}
	}
}

func TestPerturbPreservesBatchNormStats(t *testing.T) {
	m, err := MobileNetish(Config{Name: "bn", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	v := Perturb(m, "v", 0.5, 3)
	for _, l := range m.Layers {
		if l.Op != graph.OpBatchNorm {
			continue
		}
		for _, pname := range []string{"Mean", "Var"} {
			if tensor.L2Distance(l.Param(pname), v.Layer(l.Name).Param(pname)) != 0 {
				t.Fatalf("perturb touched BatchNorm %s", pname)
			}
		}
	}
}

func TestCalibratedVariantHitsTarget(t *testing.T) {
	m, err := DenseResidualNet(Config{Name: "cal", Seed: 5, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(6)
	probes := probeInputs(m.InputShape, 400, rng)
	for _, target := range []float64{0.05, 0.15, 0.3} {
		_, dis, err := CalibratedVariant(m, "v", target, probes, 7)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dis-target) > 0.05 {
			t.Fatalf("target %g achieved %g", target, dis)
		}
	}
}

func TestCalibratedVariantZeroTarget(t *testing.T) {
	m, err := DenseResidualNet(Config{Name: "z", Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	v, dis, err := CalibratedVariant(m, "v0", 0, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	if dis != 0 || v.Name != "v0" {
		t.Fatalf("zero-target variant: %g, %q", dis, v.Name)
	}
	if _, _, err := CalibratedVariant(m, "bad", 1.5, nil, 9); err == nil {
		t.Fatal("expected range error")
	}
}

func TestTransferSharesTrunkSegments(t *testing.T) {
	base, err := DenseResidualNet(Config{Name: "tbase", Seed: 10, Width: 24, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Transfer(base, "downstream", 12, 99, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	out, err := v.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 12 {
		t.Fatalf("head width = %d", out[0])
	}
	if v.Metadata["transferred-from"] != "tbase" {
		t.Fatal("lineage metadata missing")
	}
	// The frozen trunk must be detected as a common segment.
	pairs, err := equiv.CommonSegments(base, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("transfer trunk not detected as common segment")
	}
	// With full freeze, the trunk weights are identical → bound ~0.
	bound, err := equiv.PropagateBound(pairs[0], 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bound > 1e-9 {
		t.Fatalf("frozen trunk bound = %g", bound)
	}
}

func TestTransferFineTuningMovesUnfrozenLayers(t *testing.T) {
	base, err := DenseResidualNet(Config{Name: "ft", Seed: 12, Width: 24, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Transfer(base, "tuned", 8, 1, 0.2, 13)
	if err != nil {
		t.Fatal(err)
	}
	moved, frozen := 0, 0
	linSeen := 0
	order, _ := base.TopoSort()
	for _, l := range order {
		if l.Op.Class() != graph.ClassLinear {
			continue
		}
		vl := v.Layer(l.Name)
		if vl.Attrs.Units != l.Attrs.Units {
			continue // replaced head
		}
		linSeen++
		d := tensor.L2Distance(l.Param("W"), vl.Param("W"))
		if linSeen == 1 {
			if d != 0 {
				t.Fatal("frozen first layer moved")
			}
			frozen++
		} else if d > 0 {
			moved++
		}
	}
	if frozen == 0 || moved == 0 {
		t.Fatalf("freeze/tune split wrong: frozen=%d moved=%d", frozen, moved)
	}
}

func TestInflatePreservesFunction(t *testing.T) {
	m, err := DenseResidualNet(Config{Name: "inf", Seed: 14, Width: 24, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Inflate(m, "inf-big", 24, 48, 15)
	if err != nil {
		t.Fatal(err)
	}
	if big.ParamCount() <= m.ParamCount()*2 {
		t.Fatalf("inflation did not grow params: %d vs %d", big.ParamCount(), m.ParamCount())
	}
	em, err := nn.NewExecutor(m)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := nn.NewExecutor(big)
	if err != nil {
		t.Fatal(err)
	}
	probes := probeInputs(m.InputShape, 200, tensor.NewRNG(16))
	agree, err := nn.AgreementRatio(em, eb, probes)
	if err != nil {
		t.Fatal(err)
	}
	if agree < 0.95 {
		t.Fatalf("inflated model agreement = %g", agree)
	}
	// Resource profile must genuinely grow.
	prof := resource.NewProfiler(nil)
	pm, err := prof.Measure(m)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := prof.Measure(big)
	if err != nil {
		t.Fatal(err)
	}
	if pb.FLOPs <= pm.FLOPs || pb.MemoryBytes <= pm.MemoryBytes {
		t.Fatal("inflated model not more expensive")
	}
}

func TestInflateRejectsShrink(t *testing.T) {
	m, err := DenseResidualNet(Config{Name: "s", Seed: 17, Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inflate(m, "x", 24, 16, 1); err == nil {
		t.Fatal("expected shrink error")
	}
}

func TestCorrelatedCohortFigure3Shape(t *testing.T) {
	cohort, err := CorrelatedCohort(16, 8, 3, 0.25, 0.1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(cohort.Models) != 3 {
		t.Fatalf("cohort size %d", len(cohort.Models))
	}
	probes := probeInputs(cohort.Teacher.InputShape, 300, tensor.NewRNG(21))
	te, err := nn.NewExecutor(cohort.Teacher)
	if err != nil {
		t.Fatal(err)
	}
	execs := make([]*nn.Executor, len(cohort.Models))
	for i, m := range cohort.Models {
		execs[i], err = nn.NewExecutor(m)
		if err != nil {
			t.Fatal(err)
		}
	}
	// Pairwise agreement between cohort models must exceed each model's
	// accuracy (agreement with the teacher) — Figure 3's phenomenon.
	var minPair, maxAcc float64 = 1, 0
	for i := range execs {
		acc, err := nn.AgreementRatio(execs[i], te, probes)
		if err != nil {
			t.Fatal(err)
		}
		if acc > maxAcc {
			maxAcc = acc
		}
		for j := i + 1; j < len(execs); j++ {
			p, err := nn.AgreementRatio(execs[i], execs[j], probes)
			if err != nil {
				t.Fatal(err)
			}
			if p < minPair {
				minPair = p
			}
		}
	}
	if minPair <= maxAcc {
		t.Fatalf("cohort agreement (%.3f) should exceed accuracy (%.3f)", minPair, maxAcc)
	}
}

func TestSyntheticRepositorySpread(t *testing.T) {
	repo, err := SyntheticRepository(2, 5, 0.1, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Bases) != 2 || len(repo.Entries) != 10 {
		t.Fatalf("sizes: %d bases, %d entries", len(repo.Bases), len(repo.Entries))
	}
	for _, e := range repo.Entries {
		if e.TrueDiff < 0 || e.TrueDiff > 0.2 {
			t.Fatalf("entry %s diff %g outside expected band", e.Model.Name, e.TrueDiff)
		}
		if e.Model.Metadata["series"] == "" {
			t.Fatal("entry missing series metadata")
		}
	}
	if _, err := SyntheticRepository(0, 1, 0.1, 1); err == nil {
		t.Fatal("expected size error")
	}
}

func TestCatalogStructure(t *testing.T) {
	cfg := CatalogConfig{NumSeries: 6, MinPerSeries: 3, MaxPerSeries: 4, NumTrunks: 2, Seed: 23}
	series, err := Catalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 {
		t.Fatalf("series count %d", len(series))
	}
	trunkGroups := map[string]int{}
	total := 0
	for _, s := range series {
		if len(s.Models) < 3 || len(s.Models) > 4 {
			t.Fatalf("series %s has %d models", s.Name, len(s.Models))
		}
		trunkGroups[s.Trunk]++
		total += len(s.Models)
		for _, m := range s.Models {
			if m.Metadata["series"] != s.Name {
				t.Fatalf("model %s series metadata %q", m.Name, m.Metadata["series"])
			}
		}
	}
	if len(trunkGroups) != 2 {
		t.Fatalf("trunk groups = %d", len(trunkGroups))
	}
	if total < 18 {
		t.Fatalf("total models = %d", total)
	}
}

func TestSizeLadderMonotoneResources(t *testing.T) {
	teacher, err := DenseResidualNet(Config{Name: "lt", Seed: 24, Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := SizeLadder("bitish", teacher, 24, []int{24, 32, 48}, []float64{0.1, 0.06, 0.03}, 25)
	if err != nil {
		t.Fatal(err)
	}
	prof := resource.NewProfiler(nil)
	var prev int64 = -1
	for _, m := range ladder {
		p, err := prof.Measure(m)
		if err != nil {
			t.Fatal(err)
		}
		if p.FLOPs <= prev {
			t.Fatalf("ladder FLOPs not increasing: %d after %d", p.FLOPs, prev)
		}
		prev = p.FLOPs
	}
	if _, err := SizeLadder("x", teacher, 24, []int{16}, []float64{0.1}, 1); err == nil {
		t.Fatal("expected width error")
	}
}

func TestPaperScaleDenseHitsTarget(t *testing.T) {
	m, err := PaperScaleDense("bertish", 1_000_000, 8, 26)
	if err != nil {
		t.Fatal(err)
	}
	got := m.ParamCount()
	if got < 800_000 || got > 1_300_000 {
		t.Fatalf("param count %d for target 1M", got)
	}
}
