// Package zoo synthesizes the DNN model populations the experiments run
// on, standing in for the paper's pre-trained TF-Hub and transfer-learned
// models (repro substitution documented in DESIGN.md). It provides:
//
//   - architecture families with realistic operator mixes (residual
//     dense, convolutional, mobile-narrow, branchy inception-style);
//   - transfer variants that share a base trunk with controlled
//     fine-tuning perturbation;
//   - difference-calibrated variants whose disagreement with a base
//     model hits a target fraction (the independent variable of the
//     query-quality experiment);
//   - the 200-model synthetic repository and the 30-series TF-Hub-like
//     catalog used by the case studies.
package zoo

import (
	"fmt"
	"math"

	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/tensor"
)

// Classes returns n synthetic label names ("class00".."classNN"), shared
// across models of the same task so output-syntax checks pass.
func Classes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("class%02d", i)
	}
	return out
}

// Config scales a family build.
type Config struct {
	Name    string
	Seed    uint64
	InDim   int // per-sample input width (dense families)
	Classes int
	Depth   int // number of blocks
	Width   int // hidden width / channel count
	Series  string
}

func (c Config) defaults() Config {
	if c.InDim == 0 {
		c.InDim = 16
	}
	if c.Classes == 0 {
		c.Classes = 8
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	if c.Width == 0 {
		c.Width = 32
	}
	return c
}

// DenseResidualNet builds a residual MLP (the dense analogue of
// ResNet/BiT): a stem projection followed by Depth residual blocks of
// Dense→ReLU→Dense plus a classifier head.
func DenseResidualNet(cfg Config) (*graph.Model, error) {
	cfg = cfg.defaults()
	b := graph.NewBuilder(cfg.Name, graph.TaskClassification, tensor.Shape{cfg.InDim}, tensor.NewRNG(cfg.Seed))
	b.Dense(cfg.Width)
	b.ReLU()
	for i := 0; i < cfg.Depth; i++ {
		b.Residual(func(b *graph.Builder) {
			b.Dense(cfg.Width)
			b.ReLU()
			b.Dense(cfg.Width)
		})
		b.ReLU()
	}
	b.Dense(cfg.Classes)
	b.Softmax()
	b.Labels(Classes(cfg.Classes))
	b.Meta("family", "dense-residual")
	b.Meta("series", cfg.Series)
	return b.Build()
}

// TransformerishNet builds a LayerNorm-heavy residual stack, the dense
// analogue of a BERT encoder.
func TransformerishNet(cfg Config) (*graph.Model, error) {
	cfg = cfg.defaults()
	b := graph.NewBuilder(cfg.Name, graph.TaskClassification, tensor.Shape{cfg.InDim}, tensor.NewRNG(cfg.Seed))
	b.Dense(cfg.Width)
	for i := 0; i < cfg.Depth; i++ {
		b.Residual(func(b *graph.Builder) {
			b.LayerNorm()
			b.Dense(cfg.Width)
			b.Tanh()
			b.Dense(cfg.Width)
		})
	}
	b.LayerNorm()
	b.Dense(cfg.Classes)
	b.Softmax()
	b.Labels(Classes(cfg.Classes))
	b.Meta("family", "transformerish")
	b.Meta("series", cfg.Series)
	return b.Build()
}

// ConvNet builds a VGG-style plain convolutional classifier over
// Width-channel 3×H×W inputs. InDim is interpreted as the square input
// side length (default 8).
func ConvNet(cfg Config) (*graph.Model, error) {
	cfg = cfg.defaults()
	side := cfg.InDim
	if side < 4 || side > 64 {
		side = 8
	}
	b := graph.NewBuilder(cfg.Name, graph.TaskClassification, tensor.Shape{3, side, side}, tensor.NewRNG(cfg.Seed))
	ch := cfg.Width / 4
	if ch < 2 {
		ch = 2
	}
	for i := 0; i < cfg.Depth && side >= 2; i++ {
		b.Conv(ch, 3, 1, 1)
		b.ReLU()
		if side >= 4 {
			b.MaxPool(2, 2)
			side /= 2
		}
		ch *= 2
	}
	b.Flatten()
	b.Dense(cfg.Width)
	b.ReLU()
	b.Dense(cfg.Classes)
	b.Softmax()
	b.Labels(Classes(cfg.Classes))
	b.Meta("family", "conv")
	b.Meta("series", cfg.Series)
	return b.Build()
}

// MobileNetish builds a narrow, cheap dense model (the MobileNet point in
// the accuracy/footprint trade-off space).
func MobileNetish(cfg Config) (*graph.Model, error) {
	cfg = cfg.defaults()
	b := graph.NewBuilder(cfg.Name, graph.TaskClassification, tensor.Shape{cfg.InDim}, tensor.NewRNG(cfg.Seed))
	w := cfg.Width / 2
	if w < 4 {
		w = 4
	}
	for i := 0; i < cfg.Depth; i++ {
		b.Dense(w)
		b.ReLU()
		b.BatchNorm()
	}
	b.Dense(cfg.Classes)
	b.Softmax()
	b.Labels(Classes(cfg.Classes))
	b.Meta("family", "mobile")
	b.Meta("series", cfg.Series)
	return b.Build()
}

// InceptionishNet builds a branchy model: parallel Dense towers merged by
// Concat, exercising multi-source operators.
func InceptionishNet(cfg Config) (*graph.Model, error) {
	cfg = cfg.defaults()
	b := graph.NewBuilder(cfg.Name, graph.TaskClassification, tensor.Shape{cfg.InDim}, tensor.NewRNG(cfg.Seed))
	b.Dense(cfg.Width)
	b.ReLU()
	act := b.Last()
	half := cfg.Width / 2
	if half < 2 {
		half = 2
	}
	b1 := b.Add(graph.OpDense, graph.Attrs{Units: half}, act)
	b1 = b.Add(graph.OpReLU, graph.Attrs{}, b1)
	b2 := b.Add(graph.OpDense, graph.Attrs{Units: half}, act)
	b2 = b.Add(graph.OpTanh, graph.Attrs{}, b2)
	b.Add(graph.OpConcat, graph.Attrs{}, b1, b2)
	b.Dense(cfg.Classes)
	b.Softmax()
	b.Labels(Classes(cfg.Classes))
	b.Meta("family", "inception")
	b.Meta("series", cfg.Series)
	return b.Build()
}

// Build dispatches a family by name.
func Build(family string, cfg Config) (*graph.Model, error) {
	switch family {
	case "dense-residual":
		return DenseResidualNet(cfg)
	case "transformerish":
		return TransformerishNet(cfg)
	case "conv":
		return ConvNet(cfg)
	case "mobile":
		return MobileNetish(cfg)
	case "inception":
		return InceptionishNet(cfg)
	default:
		return nil, fmt.Errorf("zoo: unknown family %q", family)
	}
}

// Families lists the family names Build accepts.
func Families() []string {
	return []string{"dense-residual", "transformerish", "conv", "mobile", "inception"}
}

// Perturb returns a renamed clone of m with every parameter element
// nudged by Gaussian noise of relative magnitude frac. Scale-relative
// noise keeps layer spectra realistic, which matters for the bounds.
func Perturb(m *graph.Model, name string, frac float64, seed uint64) *graph.Model {
	c := m.Clone()
	c.Name = name
	rng := tensor.NewRNG(seed)
	for _, l := range c.Layers {
		for _, pname := range l.ParamNames() {
			// Leave BatchNorm running statistics intact; perturbing
			// Var can flip it negative.
			if pname == "Var" || pname == "Mean" {
				continue
			}
			p := l.Params[pname]
			for i, v := range p.Data() {
				p.Data()[i] = v + frac*rng.NormFloat64()*(math.Abs(v)+1e-3)
			}
		}
	}
	return c
}

// CalibratedVariant perturbs base until the variant's prediction
// disagreement with base over the probe inputs is close to target. It
// returns the variant and its achieved disagreement. Binary search over
// the noise fraction converges because disagreement is monotone in noise
// in expectation.
func CalibratedVariant(base *graph.Model, name string, target float64, probes []*tensor.Tensor, seed uint64) (*graph.Model, float64, error) {
	if target < 0 || target >= 1 {
		return nil, 0, fmt.Errorf("zoo: target disagreement %g out of [0,1)", target)
	}
	baseExec, err := nn.NewExecutor(base)
	if err != nil {
		return nil, 0, err
	}
	if target == 0 {
		v := base.Clone()
		v.Name = name
		return v, 0, nil
	}
	measure := func(frac float64) (*graph.Model, float64, error) {
		v := Perturb(base, name, frac, seed)
		ve, err := nn.NewExecutor(v)
		if err != nil {
			return nil, 0, err
		}
		agree, err := nn.AgreementRatio(baseExec, ve, probes)
		if err != nil {
			return nil, 0, err
		}
		return v, 1 - agree, nil
	}
	lo, hi := 0.0, 0.05
	// Grow hi until it overshoots the target.
	var best *graph.Model
	var bestDis float64
	for iter := 0; iter < 12; iter++ {
		v, dis, err := measure(hi)
		if err != nil {
			return nil, 0, err
		}
		best, bestDis = v, dis
		if dis >= target {
			break
		}
		lo, hi = hi, hi*2
	}
	for iter := 0; iter < 14; iter++ {
		mid := (lo + hi) / 2
		v, dis, err := measure(mid)
		if err != nil {
			return nil, 0, err
		}
		if math.Abs(dis-target) < math.Abs(bestDis-target) {
			best, bestDis = v, dis
		}
		if dis < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, bestDis, nil
}

// Transfer derives a downstream variant of base: the trunk (every layer
// except the classifier head) is copied, layers beyond freezeDepth linear
// layers are perturbed by tuneFrac to mimic fine-tuning, and a fresh head
// with headClasses outputs replaces the original. The variant shares the
// trunk structure with base, so segment extraction finds the common base.
func Transfer(base *graph.Model, name string, headClasses int, freezeDepth int, tuneFrac float64, seed uint64) (*graph.Model, error) {
	order, err := base.TopoSort()
	if err != nil {
		return nil, err
	}
	// Identify the head: the final Dense (+ trailing Softmax).
	headStart := -1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].Op == graph.OpDense {
			headStart = i
			break
		}
	}
	if headStart <= 0 {
		return nil, fmt.Errorf("zoo: model %q has no dense head to transfer", base.Name)
	}

	v := base.Clone()
	v.Name = name
	rng := tensor.NewRNG(seed)

	// Perturb unfrozen trunk linear layers (everything after the first
	// freezeDepth linear layers, excluding the head).
	linSeen := 0
	for i := 0; i < headStart; i++ {
		l := v.Layer(order[i].Name)
		if l.Op.Class() != graph.ClassLinear {
			continue
		}
		linSeen++
		if linSeen <= freezeDepth || tuneFrac == 0 {
			continue
		}
		for _, pname := range l.ParamNames() {
			if pname == "Var" || pname == "Mean" {
				continue
			}
			p := l.Params[pname]
			for j, val := range p.Data() {
				p.Data()[j] = val + tuneFrac*rng.NormFloat64()*(math.Abs(val)+1e-3)
			}
		}
	}

	// Replace the head with a fresh one of the requested width.
	head := v.Layer(order[headStart].Name)
	inDim := head.Param("W").Shape()[1]
	head.Attrs.Units = headClasses
	w := tensor.New(headClasses, inDim)
	rng.FillXavier(w)
	head.Params["W"] = w
	head.Params["B"] = tensor.New(headClasses)
	v.OutputLabels = Classes(headClasses)
	if v.Metadata == nil {
		v.Metadata = map[string]string{}
	}
	v.Metadata["transferred-from"] = base.Name
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("zoo: transfer produced invalid model: %w", err)
	}
	return v, nil
}

// SparseEdit derives a variant of base differing in exactly edits
// elements of each linear layer's weight matrix — the surgical-patch
// case (bias fixes, pruning touch-ups) the storage layer's sparse
// delta encoding targets. Everything else, including shapes and
// structure, is shared bit-for-bit with base.
func SparseEdit(base *graph.Model, name string, edits int, seed uint64) (*graph.Model, error) {
	order, err := base.TopoSort()
	if err != nil {
		return nil, err
	}
	v := base.Clone()
	v.Name = name
	rng := tensor.NewRNG(seed)
	for _, n := range order {
		l := v.Layer(n.Name)
		if l.Op.Class() != graph.ClassLinear {
			continue
		}
		w, ok := l.Params["W"]
		if !ok || len(w.Data()) == 0 {
			continue
		}
		data := w.Data()
		for e := 0; e < edits; e++ {
			j := rng.Intn(len(data))
			data[j] += 0.05 * rng.NormFloat64()
		}
	}
	if v.Metadata == nil {
		v.Metadata = map[string]string{}
	}
	v.Metadata["transferred-from"] = base.Name
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("zoo: sparse edit produced invalid model: %w", err)
	}
	return v, nil
}

// PaperScaleDense builds a plain dense stack whose parameter count is
// approximately targetParams — used to reproduce Table 2 at the paper's
// model sizes (62M…340M) or any scaled-down fraction.
func PaperScaleDense(name string, targetParams int64, depth int, seed uint64) (*graph.Model, error) {
	if depth <= 0 {
		depth = 8
	}
	// params ≈ depth * w² for square layers.
	w := int(math.Sqrt(float64(targetParams) / float64(depth)))
	if w < 4 {
		w = 4
	}
	b := graph.NewBuilder(name, graph.TaskClassification, tensor.Shape{w}, tensor.NewRNG(seed))
	for i := 0; i < depth; i++ {
		b.Dense(w)
		b.ReLU()
	}
	b.Dense(16)
	b.Softmax()
	b.Labels(Classes(16))
	b.Meta("family", "paper-scale")
	return b.Build()
}
