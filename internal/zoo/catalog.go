package zoo

import (
	"fmt"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Cohort is a group of models sharing a task (and often a lineage), with
// the teacher model defining the task's ground truth.
type Cohort struct {
	Teacher *graph.Model
	Models  []*graph.Model
	// TrueDiff maps model name to its calibrated disagreement with the
	// cohort base — the experiments' ground truth.
	TrueDiff map[string]float64
}

// CorrelatedCohort reproduces the Figure 3 phenomenon: k "independently
// designed" models that were all trained on the same data. The teacher
// defines ground truth; a common ancestor C sits baseDiff away from the
// teacher; each cohort model sits variantDiff away from C. Pairwise
// agreement between cohort models then exceeds each model's own accuracy
// against the teacher.
func CorrelatedCohort(inDim, classes, k int, baseDiff, variantDiff float64, seed uint64) (*Cohort, error) {
	teacher, err := DenseResidualNet(Config{
		Name: "teacher", Seed: seed, InDim: inDim, Classes: classes, Depth: 2, Width: 48,
	})
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed + 1)
	probes := probeInputs(teacher.InputShape, 400, rng)

	ancestor, _, err := CalibratedVariant(teacher, "ancestor", baseDiff, probes, seed+2)
	if err != nil {
		return nil, err
	}
	cohort := &Cohort{Teacher: teacher, TrueDiff: make(map[string]float64)}
	names := []string{"resnet50ish", "inceptionish", "resnext101ish", "vgg19ish", "mobilenetish"}
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("model%d", i)
		if i < len(names) {
			name = names[i]
		}
		v, dis, err := CalibratedVariant(ancestor, name, variantDiff, probes, seed+10+uint64(i))
		if err != nil {
			return nil, err
		}
		cohort.Models = append(cohort.Models, v)
		cohort.TrueDiff[name] = dis
	}
	return cohort, nil
}

func probeInputs(shape tensor.Shape, n int, rng *tensor.RNG) []*tensor.Tensor {
	out := make([]*tensor.Tensor, n)
	for i := range out {
		t := tensor.New(shape...)
		rng.FillNormal(t, 0, 1)
		out[i] = t
	}
	return out
}

// SyntheticEntry pairs a generated model with its ground-truth
// disagreement from its reference base.
type SyntheticEntry struct {
	Model *graph.Model
	// Base names the reference model this entry derives from.
	Base string
	// TrueDiff is the calibrated disagreement with the base.
	TrueDiff float64
}

// SyntheticRepo is the paper's 200-model synthetic repository (§7):
// variants transferred from a handful of widely used bases, with
// fine-grained control over functional-equivalence levels.
type SyntheticRepo struct {
	Bases   []*graph.Model
	Entries []SyntheticEntry
}

// SyntheticRepository generates nPerBase variants of each of nBases base
// models, with disagreement levels spread uniformly over (0, maxDiff].
// It exercises every dense family in rotation.
func SyntheticRepository(nBases, nPerBase int, maxDiff float64, seed uint64) (*SyntheticRepo, error) {
	if nBases <= 0 || nPerBase <= 0 {
		return nil, fmt.Errorf("zoo: synthetic repository needs positive sizes")
	}
	families := []string{"dense-residual", "transformerish", "mobile", "inception"}
	repo := &SyntheticRepo{}
	rng := tensor.NewRNG(seed)
	for bi := 0; bi < nBases; bi++ {
		fam := families[bi%len(families)]
		base, err := Build(fam, Config{
			Name:    fmt.Sprintf("base-%s-%d", fam, bi),
			Seed:    seed + uint64(bi)*101,
			InDim:   16,
			Classes: 8,
			Depth:   2,
			Width:   32 + 8*(bi%3),
			Series:  fmt.Sprintf("series-%d", bi),
		})
		if err != nil {
			return nil, fmt.Errorf("zoo: building base %d: %w", bi, err)
		}
		repo.Bases = append(repo.Bases, base)
		probes := probeInputs(base.InputShape, 300, rng.Fork())
		for vi := 0; vi < nPerBase; vi++ {
			// Uniform spread of target differences over (0, maxDiff].
			target := maxDiff * float64(vi+1) / float64(nPerBase)
			name := fmt.Sprintf("%s-v%02d", base.Name, vi)
			v, dis, err := CalibratedVariant(base, name, target, probes, seed+uint64(bi)*1000+uint64(vi))
			if err != nil {
				return nil, fmt.Errorf("zoo: variant %s: %w", name, err)
			}
			if v.Metadata == nil {
				v.Metadata = map[string]string{}
			}
			v.Metadata["series"] = fmt.Sprintf("series-%d", bi)
			repo.Entries = append(repo.Entries, SyntheticEntry{Model: v, Base: base.Name, TrueDiff: dis})
		}
	}
	return repo, nil
}

// Series is a TF-Hub-style collection: a ladder of increasingly large
// models derived from one trunk.
type Series struct {
	Name   string
	Trunk  string // shared-trunk group; series with equal Trunk correlate
	Models []*graph.Model
}

// CatalogConfig scales the TF-Hub-like catalog.
type CatalogConfig struct {
	NumSeries int
	// ModelsPerSeries varies per series between Min and Max.
	MinPerSeries, MaxPerSeries int
	NumTrunks                  int
	Seed                       uint64
}

// DefaultCatalogConfig reproduces the paper's case study scale: 30 series
// totalling ~163 models derived from 8 shared trunks.
func DefaultCatalogConfig() CatalogConfig {
	return CatalogConfig{NumSeries: 30, MinPerSeries: 4, MaxPerSeries: 8, NumTrunks: 8, Seed: 0xca7a}
}

// Catalog synthesizes a TF-Hub-like population: NumSeries series, each a
// size ladder built from one of NumTrunks shared trunk models. Models in
// different series sharing a trunk are functionally correlated — the
// hidden cross-series structure Figures 12(b) and 13 uncover.
func Catalog(cfg CatalogConfig) ([]Series, error) {
	if cfg.NumSeries <= 0 {
		return nil, fmt.Errorf("zoo: catalog needs at least one series")
	}
	if cfg.NumTrunks <= 0 {
		cfg.NumTrunks = 8
	}
	if cfg.MinPerSeries <= 0 {
		cfg.MinPerSeries = 4
	}
	if cfg.MaxPerSeries < cfg.MinPerSeries {
		cfg.MaxPerSeries = cfg.MinPerSeries
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Shared trunks: one teacher-grade model per trunk group.
	trunks := make([]*graph.Model, cfg.NumTrunks)
	for i := range trunks {
		t, err := DenseResidualNet(Config{
			Name: fmt.Sprintf("trunk-%d", i), Seed: cfg.Seed + uint64(i)*7,
			InDim: 16, Classes: 8, Depth: 2, Width: 40,
		})
		if err != nil {
			return nil, err
		}
		trunks[i] = t
	}

	var out []Series
	for si := 0; si < cfg.NumSeries; si++ {
		trunkIdx := si % cfg.NumTrunks
		trunk := trunks[trunkIdx]
		probes := probeInputs(trunk.InputShape, 250, rng.Fork())
		n := cfg.MinPerSeries
		if cfg.MaxPerSeries > cfg.MinPerSeries {
			n += rng.Intn(cfg.MaxPerSeries - cfg.MinPerSeries + 1)
		}
		s := Series{
			Name:  fmt.Sprintf("series-%02d", si),
			Trunk: trunk.Name,
		}
		// Each series first derives its own core from the shared trunk
		// (its "identity": the series-specific training recipe), then
		// builds rungs off that core. Recipe distances cycle through
		// near-clone, moderate, and distinct tiers: real hubs contain
		// both rebranded near-duplicates and genuinely different
		// recipes over the same trunk, and it is the near-clone pairs
		// whose best equivalents cross series boundaries — the partial
		// crossing fractions Figure 13 quantifies.
		recipeTiers := []float64{0.015, 0.02, 0.045, 0.07}
		coreDiff := recipeTiers[si%len(recipeTiers)]
		core, _, err := CalibratedVariant(trunk, s.Name+"-core", coreDiff, probes, cfg.Seed+uint64(si)*977+5)
		if err != nil {
			return nil, err
		}
		// Ladder: rung r is a calibrated variant of the series core
		// whose distance shrinks as the model "grows" (larger models
		// are more faithful), inflated to a rung-specific width so
		// resource profiles form a real ladder.
		for r := 0; r < n; r++ {
			target := 0.008 + 0.025*float64(n-1-r)/float64(n)
			name := fmt.Sprintf("%s-m%d", s.Name, r)
			v, dis, err := CalibratedVariant(core, name, target, probes, cfg.Seed+uint64(si)*131+uint64(r))
			if err != nil {
				return nil, err
			}
			if r > 0 {
				v, err = Inflate(v, name, 40, 40+8*r, cfg.Seed+uint64(si)*977+uint64(r))
				if err != nil {
					return nil, err
				}
			}
			if v.Metadata == nil {
				v.Metadata = map[string]string{}
			}
			v.Metadata["series"] = s.Name
			v.Metadata["trunk"] = trunk.Name
			v.Metadata["rung"] = fmt.Sprint(r)
			v.Metadata["true-diff"] = fmt.Sprintf("%.4f", dis)
			s.Models = append(s.Models, v)
		}
		out = append(out, s)
	}
	return out, nil
}

// SizeLadder builds a BiT-like or EfficientNet-like series: each rung is
// a variant of the task teacher calibrated to a rung-specific
// disagreement target (its behavioural distance from the task's ground
// truth — real series are accuracy ladders), then inflated to the rung's
// width so resource profiles genuinely grow. targets and widths must
// have equal lengths; rung order is smallest-first, and targets normally
// decrease with size (bigger models are more accurate). Different series
// over the same teacher can then be more or less parameter-efficient —
// the structure Figure 12(b) uncovers.
func SizeLadder(seriesName string, teacher *graph.Model, coreWidth int, widths []int, targets []float64, seed uint64) ([]*graph.Model, error) {
	if len(widths) != len(targets) {
		return nil, fmt.Errorf("zoo: ladder needs one target per width (%d vs %d)", len(widths), len(targets))
	}
	rng := tensor.NewRNG(seed)
	probes := probeInputs(teacher.InputShape, 300, rng)
	var out []*graph.Model
	for i, w := range widths {
		if w < coreWidth {
			return nil, fmt.Errorf("zoo: ladder width %d below core width %d", w, coreWidth)
		}
		name := fmt.Sprintf("%s-r%d", seriesName, i)
		core, dis, err := CalibratedVariant(teacher, name, targets[i], probes, seed+10+uint64(i))
		if err != nil {
			return nil, err
		}
		rung, err := Inflate(core, name, coreWidth, w, seed+50+uint64(i))
		if err != nil {
			return nil, err
		}
		if rung.Metadata == nil {
			rung.Metadata = map[string]string{}
		}
		rung.Metadata["series"] = seriesName
		rung.Metadata["width"] = fmt.Sprint(w)
		rung.Metadata["true-diff"] = fmt.Sprintf("%.4f", dis)
		out = append(out, rung)
	}
	return out, nil
}
