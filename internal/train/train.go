// Package train implements plain SGD backpropagation for sequential
// models: dense chains (Dense / ReLU / LeakyReLU / Tanh / Sigmoid /
// Softmax / Flatten / Identity / Dropout) and convolutional chains
// (Conv2D / MaxPool / GlobalAvgPool / BatchNorm, see conv.go). The
// paper's workflows never train large models from scratch — they
// fine-tune during transfer — and this trainer covers exactly that: the
// zoo uses it to derive downstream variants, and the modeldesign example
// uses it to adapt a selected base.
package train

import (
	"fmt"
	"math"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Loss selects the training objective.
type Loss int

const (
	// CrossEntropy expects a trailing Softmax layer and one-hot labels
	// (supplied as class indices).
	CrossEntropy Loss = iota
	// MSE trains on raw output vectors.
	MSE
)

// Config controls an SGD run.
type Config struct {
	Epochs       int
	LearningRate float64
	Loss         Loss
	// Frozen lists layer names whose parameters must not move — the
	// transfer-learning "freeze the base" knob.
	Frozen map[string]bool
	// Seed orders the training samples; runs are deterministic.
	Seed uint64
	// L2 is optional weight decay applied to Dense weights.
	L2 float64
}

// Example is one training sample: an input tensor plus either a class
// index (classification) or a target vector (regression).
type Example struct {
	Input  *tensor.Tensor
	Class  int
	Target *tensor.Tensor
}

// SGD trains the model in place and returns the mean loss of the final
// epoch. The model must be a sequential chain of supported operators.
func SGD(m *graph.Model, examples []Example, cfg Config) (float64, error) {
	if len(examples) == 0 {
		return 0, fmt.Errorf("train: no examples")
	}
	chain, err := sequentialChain(m)
	if err != nil {
		return 0, err
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.01
	}
	rng := tensor.NewRNG(cfg.Seed + 1)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(len(examples))
		total := 0.0
		for _, idx := range order {
			ex := examples[idx]
			loss, err := step(chain, ex, cfg)
			if err != nil {
				return 0, err
			}
			total += loss
		}
		lastLoss = total / float64(len(examples))
	}
	return lastLoss, nil
}

// Evaluate returns classification accuracy of the model over examples.
func Evaluate(m *graph.Model, examples []Example) (float64, error) {
	chain, err := sequentialChain(m)
	if err != nil {
		return 0, err
	}
	correct := 0
	for _, ex := range examples {
		acts, _, err := forwardChain(chain, ex.Input)
		if err != nil {
			return 0, err
		}
		if acts[len(acts)-1].ArgMax() == ex.Class {
			correct++
		}
	}
	return float64(correct) / float64(len(examples)), nil
}

// sequentialChain extracts the model's layers in execution order and
// verifies the model is a supported single-path chain.
func sequentialChain(m *graph.Model) ([]*graph.Layer, error) {
	order, err := m.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	for i, l := range order {
		switch l.Op {
		case graph.OpInput, graph.OpDense, graph.OpReLU, graph.OpLeakyReLU,
			graph.OpTanh, graph.OpSigmoid, graph.OpSoftmax,
			graph.OpFlatten, graph.OpIdentity, graph.OpDropout,
			graph.OpConv2D, graph.OpMaxPool, graph.OpGlobalAvgPool,
			graph.OpBatchNorm:
		default:
			return nil, fmt.Errorf("train: operator %s (layer %q) is not trainable; "+
				"freeze it behind a feature extractor instead", l.Op, l.Name)
		}
		if i > 0 && (len(l.Inputs) != 1 || l.Inputs[0] != order[i-1].Name) {
			return nil, fmt.Errorf("train: model %q is not a sequential chain at layer %q", m.Name, l.Name)
		}
	}
	return order, nil
}

// layerCache carries per-layer forward state the backward pass needs.
type layerCache struct {
	conv *convCache
	arg  []int // MaxPool argmax indices
}

func forwardChain(chain []*graph.Layer, in *tensor.Tensor) ([]*tensor.Tensor, []layerCache, error) {
	acts := make([]*tensor.Tensor, len(chain))
	caches := make([]layerCache, len(chain))
	cur := in
	for i, l := range chain {
		if l.Op == graph.OpInput {
			acts[i] = cur
			continue
		}
		var err error
		switch l.Op {
		case graph.OpConv2D:
			var cc *convCache
			cur, cc, err = convForward(l, cur)
			caches[i].conv = cc
		case graph.OpMaxPool:
			var arg []int
			cur, arg = maxPoolForward(l, cur)
			caches[i].arg = arg
		default:
			cur, err = applyForward(l, cur)
		}
		if err != nil {
			return nil, nil, err
		}
		acts[i] = cur
	}
	return acts, caches, nil
}

func applyForward(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
	switch l.Op {
	case graph.OpDense:
		out := tensor.MatVec(l.Param("W"), x)
		out.AddInPlace(l.Param("B"))
		return out, nil
	case graph.OpReLU:
		return x.Map(func(v float64) float64 { return math.Max(0, v) }), nil
	case graph.OpLeakyReLU:
		alpha := l.Attrs.Alpha
		if alpha == 0 {
			alpha = 0.01
		}
		return x.Map(func(v float64) float64 {
			if v >= 0 {
				return v
			}
			return alpha * v
		}), nil
	case graph.OpTanh:
		return x.Map(math.Tanh), nil
	case graph.OpSigmoid:
		return x.Map(func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }), nil
	case graph.OpSoftmax:
		return tensor.Softmax(x.Reshape(x.NumElements())), nil
	case graph.OpFlatten:
		return x.Reshape(x.NumElements()), nil
	case graph.OpIdentity, graph.OpDropout:
		return x, nil
	case graph.OpGlobalAvgPool:
		c := x.Shape()[0]
		per := x.NumElements() / c
		out := tensor.New(c)
		for ch := 0; ch < c; ch++ {
			s := 0.0
			for i := ch * per; i < (ch+1)*per; i++ {
				s += x.Data()[i]
			}
			out.Data()[ch] = s / float64(per)
		}
		return out, nil
	case graph.OpBatchNorm:
		gamma, beta := l.Param("Gamma"), l.Param("Beta")
		mean, variance := l.Param("Mean"), l.Param("Var")
		eps := l.Attrs.Eps
		if eps == 0 {
			eps = 1e-5
		}
		c := x.Shape()[0]
		per := x.NumElements() / c
		out := x.Clone()
		for ch := 0; ch < c; ch++ {
			scale := gamma.Data()[ch] / math.Sqrt(variance.Data()[ch]+eps)
			shift := beta.Data()[ch] - mean.Data()[ch]*scale
			for i := ch * per; i < (ch+1)*per; i++ {
				out.Data()[i] = out.Data()[i]*scale + shift
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("train: unsupported op %s", l.Op)
	}
}

func step(chain []*graph.Layer, ex Example, cfg Config) (float64, error) {
	acts, caches, err := forwardChain(chain, ex.Input)
	if err != nil {
		return 0, err
	}
	out := acts[len(acts)-1]

	// Loss and output gradient.
	var loss float64
	grad := tensor.New(out.NumElements())
	switch cfg.Loss {
	case CrossEntropy:
		if chain[len(chain)-1].Op != graph.OpSoftmax {
			return 0, fmt.Errorf("train: CrossEntropy requires a trailing Softmax layer")
		}
		if ex.Class < 0 || ex.Class >= out.NumElements() {
			return 0, fmt.Errorf("train: class %d out of range for output %v", ex.Class, out.Shape())
		}
		p := out.Data()[ex.Class]
		loss = -math.Log(math.Max(p, 1e-12))
		// Combined softmax+CE gradient w.r.t. the softmax *input*.
		copy(grad.Data(), out.Data())
		grad.Data()[ex.Class] -= 1
	case MSE:
		if ex.Target == nil {
			return 0, fmt.Errorf("train: MSE example missing target")
		}
		for i := range grad.Data() {
			d := out.Data()[i] - ex.Target.Data()[i]
			grad.Data()[i] = 2 * d
			loss += d * d
		}
	default:
		return 0, fmt.Errorf("train: unknown loss %d", cfg.Loss)
	}

	// Backward pass. For CrossEntropy the trailing softmax layer is
	// folded into the loss gradient, so it is skipped below.
	start := len(chain) - 1
	if cfg.Loss == CrossEntropy {
		start = len(chain) - 2
	}
	for i := start; i >= 1; i-- {
		l := chain[i]
		x := acts[i-1] // layer input
		y := acts[i]   // layer output
		switch l.Op {
		case graph.OpDense:
			w := l.Param("W")
			units, in := w.Shape()[0], w.Shape()[1]
			newGrad := tensor.New(in)
			if !cfg.Frozen[l.Name] {
				lr := cfg.LearningRate
				wd, bd := w.Data(), l.Param("B").Data()
				for u := 0; u < units; u++ {
					g := grad.Data()[u]
					row := wd[u*in : (u+1)*in]
					for j := 0; j < in; j++ {
						newGrad.Data()[j] += row[j] * g
						upd := g * x.Data()[j]
						if cfg.L2 > 0 {
							upd += cfg.L2 * row[j]
						}
						row[j] -= lr * upd
					}
					bd[u] -= lr * g
				}
			} else {
				wd := w.Data()
				for u := 0; u < units; u++ {
					g := grad.Data()[u]
					row := wd[u*in : (u+1)*in]
					for j := 0; j < in; j++ {
						newGrad.Data()[j] += row[j] * g
					}
				}
			}
			grad = newGrad
		case graph.OpReLU:
			for j := range grad.Data() {
				if x.Data()[j] <= 0 {
					grad.Data()[j] = 0
				}
			}
		case graph.OpLeakyReLU:
			alpha := l.Attrs.Alpha
			if alpha == 0 {
				alpha = 0.01
			}
			for j := range grad.Data() {
				if x.Data()[j] < 0 {
					grad.Data()[j] *= alpha
				}
			}
		case graph.OpTanh:
			for j := range grad.Data() {
				yv := y.Data()[j]
				grad.Data()[j] *= 1 - yv*yv
			}
		case graph.OpSigmoid:
			for j := range grad.Data() {
				yv := y.Data()[j]
				grad.Data()[j] *= yv * (1 - yv)
			}
		case graph.OpSoftmax:
			// Full softmax Jacobian (used only under MSE loss).
			s := y.Data()
			ng := tensor.New(len(s))
			var dot float64
			for j := range s {
				dot += grad.Data()[j] * s[j]
			}
			for j := range s {
				ng.Data()[j] = s[j] * (grad.Data()[j] - dot)
			}
			grad = ng
		case graph.OpFlatten, graph.OpIdentity, graph.OpDropout:
			// gradient passes through unchanged
		case graph.OpConv2D:
			shaped := grad.Reshape(y.Shape()...)
			dx := convBackward(l, caches[i].conv, shaped, cfg.LearningRate, cfg.Frozen[l.Name])
			grad = dx.Reshape(dx.NumElements())
		case graph.OpMaxPool:
			dx := maxPoolBackward(x, caches[i].arg, grad)
			grad = dx.Reshape(dx.NumElements())
		case graph.OpGlobalAvgPool:
			dx := globalAvgPoolBackward(x, grad)
			grad = dx.Reshape(dx.NumElements())
		case graph.OpBatchNorm:
			dx := batchNormBackward(l, x, grad, cfg.LearningRate, cfg.Frozen[l.Name])
			grad = dx.Reshape(dx.NumElements())
		}
	}
	return loss, nil
}
