package train

import (
	"math"
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// tinyCNN is a trainable convolutional classifier over 1×6×6 inputs.
func tinyCNN(t testing.TB, seed uint64) *graph.Model {
	t.Helper()
	b := graph.NewBuilder("cnn", graph.TaskClassification, tensor.Shape{1, 6, 6}, tensor.NewRNG(seed))
	b.Conv(4, 3, 1, 1)
	b.ReLU()
	b.MaxPool(2, 2)
	b.Flatten()
	b.Dense(2)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// imageExamples builds a trivially separable image task: class 0 images
// are bright in the top half, class 1 in the bottom half.
func imageExamples(n int, seed uint64) []Example {
	rng := tensor.NewRNG(seed)
	out := make([]Example, n)
	for i := range out {
		x := tensor.New(1, 6, 6)
		rng.FillNormal(x, 0, 0.2)
		cls := i % 2
		for r := 0; r < 3; r++ {
			row := r
			if cls == 1 {
				row = 3 + r
			}
			for c := 0; c < 6; c++ {
				x.Set(x.At(0, row, c)+1.5, 0, row, c)
			}
		}
		out[i] = Example{Input: x, Class: cls}
	}
	return out
}

func TestCNNLearnsImageTask(t *testing.T) {
	m := tinyCNN(t, 1)
	ex := imageExamples(200, 2)
	before, err := Evaluate(m, ex)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := SGD(m, ex, Config{Epochs: 20, LearningRate: 0.03, Loss: CrossEntropy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(m, ex)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.95 {
		t.Fatalf("CNN accuracy after training = %.2f (before %.2f, loss %.3f)", after, before, loss)
	}
}

func TestConvGradientMatchesFiniteDifference(t *testing.T) {
	// Numerical gradient check of the full conv chain: perturb one conv
	// weight, compare the loss delta against the analytic update.
	m := tinyCNN(t, 4)
	ex := imageExamples(1, 5)[0]
	chain, err := sequentialChain(m)
	if err != nil {
		t.Fatal(err)
	}
	lossOf := func() float64 {
		acts, _, err := forwardChain(chain, ex.Input)
		if err != nil {
			t.Fatal(err)
		}
		out := acts[len(acts)-1]
		return -math.Log(math.Max(out.Data()[ex.Class], 1e-12))
	}
	conv := m.Layer("Conv2D_1")
	w := conv.Params["W"]
	const eps = 1e-5
	for _, idx := range []int{0, 7, 20} {
		orig := w.Data()[idx]
		w.Data()[idx] = orig + eps
		up := lossOf()
		w.Data()[idx] = orig - eps
		down := lossOf()
		w.Data()[idx] = orig
		numGrad := (up - down) / (2 * eps)

		// Analytic gradient via one SGD step with tiny lr on a frozen
		// copy of everything except the conv: dW = (w_before-w_after)/lr.
		clone := m.Clone()
		frozen := map[string]bool{}
		for _, l := range clone.Layers {
			if l.Name != "Conv2D_1" {
				frozen[l.Name] = true
			}
		}
		const lr = 1e-6
		if _, err := SGD(clone, []Example{ex}, Config{
			Epochs: 1, LearningRate: lr, Loss: CrossEntropy, Frozen: frozen, Seed: 9,
		}); err != nil {
			t.Fatal(err)
		}
		moved := clone.Layer("Conv2D_1").Params["W"].Data()[idx]
		anaGrad := (orig - moved) / lr
		if diff := math.Abs(numGrad - anaGrad); diff > 1e-3*(1+math.Abs(numGrad)) {
			t.Fatalf("weight %d: numeric grad %.6f vs analytic %.6f", idx, numGrad, anaGrad)
		}
	}
}

func TestMaxPoolGradientRouting(t *testing.T) {
	l := &graph.Layer{Op: graph.OpMaxPool, Attrs: graph.Attrs{KernelH: 2, KernelW: 2, Stride: 2}}
	x := tensor.FromSlice([]float64{
		1, 2, 5, 0,
		3, 9, 1, 1,
		0, 0, 7, 2,
		4, 1, 0, 0,
	}, 1, 4, 4)
	out, arg := maxPoolForward(l, x)
	if out.At(0, 0, 0) != 9 || out.At(0, 0, 1) != 5 || out.At(0, 1, 1) != 7 {
		t.Fatalf("pool forward = %v", out.Data())
	}
	grad := tensor.FromSlice([]float64{10, 20, 30, 40}, 1, 2, 2)
	dx := maxPoolBackward(x, arg, grad.Reshape(4))
	// Gradient lands exactly on the argmax positions.
	if dx.At(0, 1, 1) != 10 || dx.At(0, 0, 2) != 20 || dx.At(0, 2, 2) != 40 {
		t.Fatalf("pool backward = %v", dx.Data())
	}
	if dx.Sum() != 100 {
		t.Fatalf("pool backward mass = %g", dx.Sum())
	}
}

func TestGlobalAvgPoolBackwardSpreadsEvenly(t *testing.T) {
	x := tensor.New(2, 2, 2)
	grad := tensor.FromSlice([]float64{4, 8}, 2)
	dx := globalAvgPoolBackward(x, grad)
	for i := 0; i < 4; i++ {
		if dx.Data()[i] != 1 {
			t.Fatalf("channel 0 grad = %v", dx.Data())
		}
	}
	for i := 4; i < 8; i++ {
		if dx.Data()[i] != 2 {
			t.Fatalf("channel 1 grad = %v", dx.Data())
		}
	}
}

func TestBatchNormBackwardUpdatesAffineParams(t *testing.T) {
	b := graph.NewBuilder("bn", graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(7))
	b.Dense(4)
	b.BatchNorm()
	b.ReLU()
	b.Dense(2)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bn := m.Layer("BatchNorm_2")
	gammaBefore := bn.Params["Gamma"].Clone()
	meanBefore := bn.Params["Mean"].Clone()
	ex := []Example{{Input: tensor.New(4).Fill(1), Class: 0}}
	if _, err := SGD(m, ex, Config{Epochs: 3, LearningRate: 0.1, Loss: CrossEntropy, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if tensor.L2Distance(gammaBefore, bn.Params["Gamma"]) == 0 {
		t.Fatal("Gamma did not train")
	}
	// Running statistics never move during fine-tuning.
	if tensor.L2Distance(meanBefore, bn.Params["Mean"]) != 0 {
		t.Fatal("running mean moved")
	}
}

func TestFrozenConvTrunkHeadOnlyTraining(t *testing.T) {
	// The §2 workflow end-to-end: extract a conv feature extractor,
	// attach a head, train only the head.
	base := tinyCNN(t, 11)
	fx, err := graph.ExtractPrefix(base, "MaxPool_3")
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(12)
	ds, err := graph.AttachHead(fx, "downstream", 2, nil, func(l *graph.Layer) {
		rng.FillXavier(l.Params["W"])
	})
	if err != nil {
		t.Fatal(err)
	}
	frozen := graph.FrozenTrunk(ds)
	convBefore := ds.Layer("Conv2D_1").Params["W"].Clone()
	ex := imageExamples(120, 13)
	if _, err := SGD(ds, ex, Config{
		Epochs: 15, LearningRate: 0.05, Loss: CrossEntropy, Frozen: frozen, Seed: 14,
	}); err != nil {
		t.Fatal(err)
	}
	if tensor.L2Distance(convBefore, ds.Layer("Conv2D_1").Params["W"]) != 0 {
		t.Fatal("frozen conv trunk moved")
	}
	acc, err := Evaluate(ds, ex)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("head-only training accuracy = %.2f", acc)
	}
}
