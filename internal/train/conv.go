package train

import (
	"fmt"
	"math"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// Convolutional training support: forward caching and backward rules for
// Conv2D, pooling, and BatchNorm, so the SGD loop covers the zoo's conv
// family and heads attached to conv feature extractors — not just dense
// chains.

// convCache keeps what the backward pass needs from a Conv2D forward:
// the im2col matrix of the input and the output spatial geometry.
type convCache struct {
	cols       *tensor.Tensor // [inC*kh*kw, outH*outW]
	outH, outW int
	inShape    tensor.Shape
}

// convForward mirrors nn's Conv2D execution but returns the cache.
func convForward(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, *convCache, error) {
	w, bias := l.Param("W"), l.Param("B")
	if w == nil || bias == nil {
		return nil, nil, fmt.Errorf("train: Conv2D missing parameters")
	}
	a := l.Attrs
	stride := a.Stride
	if stride == 0 {
		stride = 1
	}
	inC, inH, inW := x.Shape()[0], x.Shape()[1], x.Shape()[2]
	outH := (inH+2*a.Pad-a.KernelH)/stride + 1
	outW := (inW+2*a.Pad-a.KernelW)/stride + 1
	cols := im2col(x, a.KernelH, a.KernelW, stride, a.Pad, outH, outW)
	prod := tensor.MatMul(w, cols)
	pd := prod.Data()
	bd := bias.Data()
	area := outH * outW
	for oc := 0; oc < a.OutChannels; oc++ {
		off := oc * area
		for i := 0; i < area; i++ {
			pd[off+i] += bd[oc]
		}
	}
	cache := &convCache{cols: cols, outH: outH, outW: outW, inShape: tensor.Shape{inC, inH, inW}}
	return prod.Reshape(a.OutChannels, outH, outW), cache, nil
}

// convBackward consumes the output gradient [outC, outH, outW], updates W
// and B (unless frozen), and returns the input gradient [inC, inH, inW].
func convBackward(l *graph.Layer, cache *convCache, grad *tensor.Tensor, lr float64, frozen bool) *tensor.Tensor {
	a := l.Attrs
	stride := a.Stride
	if stride == 0 {
		stride = 1
	}
	area := cache.outH * cache.outW
	g2d := grad.Reshape(a.OutChannels, area)

	w := l.Param("W")
	// dX(cols) = Wᵀ · dY, scattered back through col2im.
	dCols := tensor.MatMul(tensor.Transpose(w), g2d)
	dx := col2im(dCols, cache.inShape, a.KernelH, a.KernelW, stride, a.Pad, cache.outH, cache.outW)

	if !frozen {
		// dW = dY · colsᵀ ; dB = row sums of dY.
		dW := tensor.MatMul(g2d, tensor.Transpose(cache.cols))
		wd := w.Data()
		for i, v := range dW.Data() {
			wd[i] -= lr * v
		}
		bd := l.Param("B").Data()
		gd := g2d.Data()
		for oc := 0; oc < a.OutChannels; oc++ {
			s := 0.0
			for i := oc * area; i < (oc+1)*area; i++ {
				s += gd[i]
			}
			bd[oc] -= lr * s
		}
	}
	return dx
}

func im2col(x *tensor.Tensor, kh, kw, stride, pad, outH, outW int) *tensor.Tensor {
	inC, inH, inW := x.Shape()[0], x.Shape()[1], x.Shape()[2]
	cols := tensor.New(inC*kh*kw, outH*outW)
	cd := cols.Data()
	xd := x.Data()
	colW := outH * outW
	for c := 0; c < inC; c++ {
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				row := ((c*kh)+i)*kw + j
				base := row * colW
				for oh := 0; oh < outH; oh++ {
					ih := oh*stride + i - pad
					if ih < 0 || ih >= inH {
						continue
					}
					xrow := (c*inH + ih) * inW
					orow := base + oh*outW
					for ow := 0; ow < outW; ow++ {
						iw := ow*stride + j - pad
						if iw < 0 || iw >= inW {
							continue
						}
						cd[orow+ow] = xd[xrow+iw]
					}
				}
			}
		}
	}
	return cols
}

func col2im(cols *tensor.Tensor, inShape tensor.Shape, kh, kw, stride, pad, outH, outW int) *tensor.Tensor {
	inC, inH, inW := inShape[0], inShape[1], inShape[2]
	out := tensor.New(inC, inH, inW)
	od := out.Data()
	cd := cols.Data()
	colW := outH * outW
	for c := 0; c < inC; c++ {
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				row := ((c*kh)+i)*kw + j
				base := row * colW
				for oh := 0; oh < outH; oh++ {
					ih := oh*stride + i - pad
					if ih < 0 || ih >= inH {
						continue
					}
					xrow := (c*inH + ih) * inW
					orow := base + oh*outW
					for ow := 0; ow < outW; ow++ {
						iw := ow*stride + j - pad
						if iw < 0 || iw >= inW {
							continue
						}
						od[xrow+iw] += cd[orow+ow]
					}
				}
			}
		}
	}
	return out
}

// maxPoolForward returns the pooled output plus the flat argmax index per
// output cell, for gradient routing.
func maxPoolForward(l *graph.Layer, x *tensor.Tensor) (*tensor.Tensor, []int) {
	a := l.Attrs
	stride := a.Stride
	if stride == 0 {
		stride = a.KernelH
	}
	c, h, w := x.Shape()[0], x.Shape()[1], x.Shape()[2]
	outH := (h-a.KernelH)/stride + 1
	outW := (w-a.KernelW)/stride + 1
	out := tensor.New(c, outH, outW)
	arg := make([]int, c*outH*outW)
	idx := 0
	for ch := 0; ch < c; ch++ {
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				best := math.Inf(-1)
				bi := 0
				for kh := 0; kh < a.KernelH; kh++ {
					for kw := 0; kw < a.KernelW; kw++ {
						ih, iw := oh*stride+kh, ow*stride+kw
						flat := (ch*h+ih)*w + iw
						if v := x.Data()[flat]; v > best {
							best, bi = v, flat
						}
					}
				}
				out.Set(best, ch, oh, ow)
				arg[idx] = bi
				idx++
			}
		}
	}
	return out, arg
}

func maxPoolBackward(x *tensor.Tensor, arg []int, grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(x.Shape()...)
	for i, flat := range arg {
		dx.Data()[flat] += grad.Data()[i]
	}
	return dx
}

// globalAvgPoolBackward spreads the per-channel gradient evenly over the
// channel's spatial positions.
func globalAvgPoolBackward(x *tensor.Tensor, grad *tensor.Tensor) *tensor.Tensor {
	c := x.Shape()[0]
	per := x.NumElements() / c
	dx := tensor.New(x.Shape()...)
	inv := 1 / float64(per)
	for ch := 0; ch < c; ch++ {
		g := grad.Data()[ch] * inv
		for i := ch * per; i < (ch+1)*per; i++ {
			dx.Data()[i] = g
		}
	}
	return dx
}

// batchNormBackward handles inference-style BatchNorm (frozen running
// statistics): y = x·scale + shift with scale = γ/√(var+ε). The input
// gradient is dz·scale; γ and β receive gradients through x̂ unless the
// layer is frozen.
func batchNormBackward(l *graph.Layer, x *tensor.Tensor, grad *tensor.Tensor, lr float64, frozen bool) *tensor.Tensor {
	gamma, beta := l.Param("Gamma"), l.Param("Beta")
	mean, variance := l.Param("Mean"), l.Param("Var")
	eps := l.Attrs.Eps
	if eps == 0 {
		eps = 1e-5
	}
	c := x.Shape()[0]
	per := x.NumElements() / c
	dx := tensor.New(x.Shape()...)
	for ch := 0; ch < c; ch++ {
		invStd := 1 / math.Sqrt(variance.Data()[ch]+eps)
		scale := gamma.Data()[ch] * invStd
		var dGamma, dBeta float64
		for i := ch * per; i < (ch+1)*per; i++ {
			g := grad.Data()[i]
			dx.Data()[i] = g * scale
			xhat := (x.Data()[i] - mean.Data()[ch]) * invStd
			dGamma += g * xhat
			dBeta += g
		}
		if !frozen {
			gamma.Data()[ch] -= lr * dGamma
			beta.Data()[ch] -= lr * dBeta
		}
	}
	return dx
}
