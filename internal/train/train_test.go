package train

import (
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

func classifier(t testing.TB, seed uint64, in, hidden, classes int) *graph.Model {
	t.Helper()
	b := graph.NewBuilder("clf", graph.TaskClassification, tensor.Shape{in}, tensor.NewRNG(seed))
	b.Dense(hidden)
	b.ReLU()
	b.Dense(classes)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func toExamples(d *dataset.Dataset) []Example {
	ex := make([]Example, d.Len())
	for i := range ex {
		ex[i] = Example{Input: d.Inputs[i], Class: d.Labels[i]}
	}
	return ex
}

func TestSGDLearnsSeparableClasses(t *testing.T) {
	d := dataset.GaussianMixture("train", 300, 6, 3, 0.3, 42)
	m := classifier(t, 1, 6, 16, 3)
	ex := toExamples(d)
	before, err := Evaluate(m, ex)
	if err != nil {
		t.Fatal(err)
	}
	loss, err := SGD(m, ex, Config{Epochs: 30, LearningRate: 0.05, Loss: CrossEntropy, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(m, ex)
	if err != nil {
		t.Fatal(err)
	}
	if after < 0.9 {
		t.Fatalf("accuracy after training = %.2f (before %.2f, loss %.3f)", after, before, loss)
	}
	if after <= before {
		t.Fatalf("training did not improve accuracy: %.2f -> %.2f", before, after)
	}
}

func TestSGDLossDecreases(t *testing.T) {
	d := dataset.GaussianMixture("loss", 120, 4, 2, 0.4, 11)
	m := classifier(t, 2, 4, 8, 2)
	ex := toExamples(d)
	l1, err := SGD(m, ex, Config{Epochs: 1, LearningRate: 0.05, Loss: CrossEntropy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := SGD(m, ex, Config{Epochs: 20, LearningRate: 0.05, Loss: CrossEntropy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1 {
		t.Fatalf("loss did not decrease: %.4f -> %.4f", l1, l2)
	}
}

func TestFrozenLayersDoNotMove(t *testing.T) {
	d := dataset.GaussianMixture("frozen", 60, 4, 2, 0.4, 13)
	m := classifier(t, 3, 4, 8, 2)
	var first *graph.Layer
	for _, l := range m.Layers {
		if l.Op == graph.OpDense {
			first = l
			break
		}
	}
	snapshot := first.Params["W"].Clone()
	_, err := SGD(m, toExamples(d), Config{
		Epochs: 5, LearningRate: 0.05, Loss: CrossEntropy, Seed: 5,
		Frozen: map[string]bool{first.Name: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tensor.L2Distance(snapshot, first.Params["W"]) != 0 {
		t.Fatal("frozen layer weights moved")
	}
	// The head must still have moved.
	moved := false
	for _, l := range m.Layers {
		if l.Op == graph.OpDense && l.Name != first.Name {
			moved = true
		}
	}
	if !moved {
		t.Fatal("test setup broken: no unfrozen dense layer")
	}
}

func TestMSERegression(t *testing.T) {
	// Learn the identity map on 2 dims.
	b := graph.NewBuilder("reg", graph.TaskRegression, tensor.Shape{2}, tensor.NewRNG(4))
	b.Dense(2)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(9)
	var ex []Example
	for i := 0; i < 200; i++ {
		x := tensor.New(2)
		rng.FillNormal(x, 0, 1)
		ex = append(ex, Example{Input: x, Target: x.Clone()})
	}
	loss, err := SGD(m, ex, Config{Epochs: 50, LearningRate: 0.05, Loss: MSE, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("MSE after training = %.4f", loss)
	}
}

func TestSGDRejectsNonSequential(t *testing.T) {
	b := graph.NewBuilder("res", graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(5))
	b.Dense(4)
	b.Residual(func(b *graph.Builder) { b.Dense(4) })
	b.Dense(2)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = SGD(m, []Example{{Input: tensor.New(4), Class: 0}}, Config{Loss: CrossEntropy})
	if err == nil {
		t.Fatal("expected error for non-sequential model")
	}
}

func TestSGDRejectsUnsupportedOp(t *testing.T) {
	b := graph.NewBuilder("ln", graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(6))
	b.Dense(4)
	b.LayerNorm() // no backward rule
	b.Dense(2)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SGD(m, []Example{{Input: tensor.New(4), Class: 0}}, Config{Loss: CrossEntropy}); err == nil {
		t.Fatal("expected error for LayerNorm in trainable chain")
	}
}

func TestSGDEmptyExamples(t *testing.T) {
	m := classifier(t, 7, 4, 4, 2)
	if _, err := SGD(m, nil, Config{}); err == nil {
		t.Fatal("expected error for empty example set")
	}
}

func TestCrossEntropyRequiresSoftmax(t *testing.T) {
	b := graph.NewBuilder("nosm", graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(8))
	b.Dense(2)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = SGD(m, []Example{{Input: tensor.New(4), Class: 0}}, Config{Loss: CrossEntropy})
	if err == nil {
		t.Fatal("expected error: CrossEntropy without Softmax")
	}
}

func TestSGDDeterministic(t *testing.T) {
	d := dataset.GaussianMixture("det", 50, 4, 2, 0.4, 21)
	run := func() *graph.Model {
		m := classifier(t, 10, 4, 6, 2)
		if _, err := SGD(m, toExamples(d), Config{Epochs: 3, LearningRate: 0.05, Loss: CrossEntropy, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := run(), run()
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Fatal("same seed produced different trained weights")
	}
}
