package catalog

import (
	"sync"

	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/index"
)

// probeCache builds and caches one probe dataset per input-shape
// signature. It is safe for concurrent use: generation happens outside
// the lock (the data is deterministic per shape and seed, so two
// racing generators produce identical datasets) and the first
// publication wins.
type probeCache struct {
	custom *dataset.Dataset
	size   int
	seed   uint64

	mu   sync.Mutex
	sets map[string]*dataset.Dataset
}

func (p *probeCache) For(m *graph.Model) *dataset.Dataset {
	if cv := p.custom; cv != nil && cv.Len() > 0 && cv.Inputs[0].Shape().Equal(m.InputShape) {
		return cv
	}
	key := m.InputShape.String()
	p.mu.Lock()
	if d, ok := p.sets[key]; ok {
		p.mu.Unlock()
		return d
	}
	p.mu.Unlock()
	d := &dataset.Dataset{
		Name:   "probe" + key,
		Inputs: dataset.RandomImages(p.size, m.InputShape, p.seed),
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if exist, ok := p.sets[key]; ok {
		return exist
	}
	p.sets[key] = d
	return d
}

// pairAnalyzer adapts internal/equiv to the semantic index's Analyzer
// interface, measuring whole-model equivalence in both directions and —
// when enabled — segment-level replacements. All its state is
// read-only after construction except the probe cache, so Analyze is
// safe to call from many workers at once.
type pairAnalyzer struct {
	opts    equiv.Options
	segs    bool
	segLen  int
	segOpts equiv.Options
	probes  *probeCache
}

func newPairAnalyzer(cfg Config) *pairAnalyzer {
	return &pairAnalyzer{
		// Epsilon 1: levels are recorded; thresholds apply at query time.
		opts:    equiv.Options{Epsilon: 1, Bound: cfg.Bound, Seed: cfg.Seed},
		segs:    cfg.Segments,
		segLen:  cfg.SegmentMinLen,
		segOpts: equiv.Options{Epsilon: 0.1, Seed: cfg.Seed, ProbeCount: 12},
		probes: &probeCache{
			custom: cfg.CustomValidation,
			size:   cfg.validationSize(),
			seed:   cfg.Seed + 3,
			sets:   make(map[string]*dataset.Dataset),
		},
	}
}

func (a *pairAnalyzer) Analyze(ref, cand index.Entry) (index.AnalysisResult, error) {
	fwd, rev, err := equiv.CheckPair(ref.Model, cand.Model,
		a.probes.For(ref.Model), a.probes.For(cand.Model), a.opts)
	if err != nil {
		return index.AnalysisResult{}, err
	}
	res := index.AnalysisResult{
		LevelForRef:  fwd.Score(),
		LevelForCand: rev.Score(),
	}
	if a.segs {
		intoRef, intoCand := equiv.AssessSwapBoth(ref.Model, cand.Model, a.segLen, a.segOpts)
		if intoRef != nil {
			res.SynthForRef = []index.Candidate{{
				ID: ref.ID, Level: intoRef.Level, Kind: index.KindSynthesized,
				DonorID: cand.ID, Segment: intoRef.Segment,
			}}
		}
		if intoCand != nil {
			res.SynthForCand = []index.Candidate{{
				ID: cand.ID, Level: intoCand.Level, Kind: index.KindSynthesized,
				DonorID: ref.ID, Segment: intoCand.Segment,
			}}
		}
	}
	return res, nil
}
