package catalog

import (
	"sommelier/internal/index"
	"sommelier/internal/resource"
)

// Snapshot is an immutable point-in-time view of the catalog: the
// semantic and resource index views plus the default-reference table.
// A query (or Explain) grabs one Snapshot and runs every stage of the
// §5.4 pipeline against it, so its answers are internally consistent
// even while writers commit new models — and it takes no locks at all.
type Snapshot struct {
	sem  *index.SemanticView
	res  *index.ResourceView
	refs map[string]string
}

// Snapshot returns the current published snapshot. The result is
// immutable and safe to use indefinitely from any goroutine.
func (c *Catalog) Snapshot() *Snapshot { return c.snap.Load() }

// publishLocked builds a fresh snapshot from the mutable indexes and
// publishes it. Callers hold c.mu.
func (c *Catalog) publishLocked() {
	refs := make(map[string]string, len(c.defaultRefs))
	for k, v := range c.defaultRefs {
		refs[k] = v
	}
	c.snap.Store(&Snapshot{
		sem:  c.sem.View(),
		res:  c.res.View(),
		refs: refs,
	})
}

// Len returns the number of indexed models.
func (s *Snapshot) Len() int { return s.sem.Len() }

// Contains reports whether the model ID is indexed.
func (s *Snapshot) Contains(id string) bool { return s.sem.Contains(id) }

// IDs returns the indexed model IDs in insertion order.
func (s *Snapshot) IDs() []string { return s.sem.IDs() }

// Lookup returns, in descending level order, all candidates of refID
// whose equivalence level meets the threshold.
func (s *Snapshot) Lookup(refID string, threshold float64) ([]index.Candidate, error) {
	return s.sem.Lookup(refID, threshold)
}

// TopK returns refID's K best candidates regardless of threshold.
func (s *Snapshot) TopK(refID string, k int) ([]index.Candidate, error) {
	return s.sem.TopK(refID, k)
}

// LookupByFingerprint resolves a model fingerprint to its indexed ID.
func (s *Snapshot) LookupByFingerprint(fp string) (string, bool) {
	return s.sem.LookupByFingerprint(fp)
}

// Profile returns the stored resource profile for id.
func (s *Snapshot) Profile(id string) (resource.Profile, bool) {
	return s.res.Profile(id)
}

// ResourceCandidates returns the IDs whose profiles satisfy the budget,
// via the two-phase LSH-probe-then-exact-check lookup (§5.3).
func (s *Snapshot) ResourceCandidates(b index.Budget, maxDist float64) ([]string, error) {
	return s.res.Candidates(b, maxDist)
}

// DefaultReference resolves a task category to its reference model ID.
func (s *Snapshot) DefaultReference(task string) (string, bool) {
	id, ok := s.refs[task]
	return id, ok
}
