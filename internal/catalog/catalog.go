// Package catalog owns Sommelier's index state: the semantic index
// (§5.2), the LSH resource index (§5.3), and the default-reference
// table, behind a copy-on-write snapshot scheme. Writers — the staged
// indexing pipeline in pipeline.go — mutate the structures under a
// single writer lock and publish an immutable Snapshot after each
// commit; readers load the current snapshot with one atomic pointer
// read and never contend with writers or each other.
package catalog

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/obs"
	"sommelier/internal/resource"
)

// Config carries everything the catalog needs to analyze, profile, and
// index models. Fields mirror the engine's public Options (§5.5).
type Config struct {
	// Seed drives every random choice; equal seeds give identical
	// catalogs regardless of indexing parallelism.
	Seed uint64
	// SampleSize overrides the semantic index's pairwise sample count.
	SampleSize int
	// Workers bounds the indexing pipeline's analysis concurrency
	// (default runtime.GOMAXPROCS(0)).
	Workers int
	// ValidationSize is the per-shape probe dataset size (default 300).
	ValidationSize int
	// Bound selects the generalization-bound mode.
	Bound equiv.BoundMode
	// Segments enables segment-replacement analysis (§4.2).
	Segments bool
	// SegmentMinLen is the minimum common-segment length considered.
	SegmentMinLen int
	// CustomValidation replaces generated probe data for matching
	// input shapes.
	CustomValidation *dataset.Dataset
	// LatencyTable overrides the per-operator latency table.
	LatencyTable resource.LatencyTable
	// Analyzer overrides the pairwise analyzer; nil selects the real
	// equiv-backed analyzer. Tests inject failing or counting stubs.
	Analyzer index.Analyzer
	// Observer receives per-stage pipeline timings, spans, and worker
	// occupancy. Nil disables instrumentation. The catalog never reads
	// the wall clock itself (detcheck); all timing flows through the
	// observer's injected clock, so a deterministic clock keeps traces
	// reproducible.
	Observer *obs.Observer
}

func (c Config) validationSize() int {
	if c.ValidationSize <= 0 {
		return 300
	}
	return c.ValidationSize
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Catalog is the write side of the index state plus the published
// read-side snapshot.
type Catalog struct {
	cfg      Config
	profiler *resource.Profiler
	analyzer index.Analyzer
	obs      *obs.Observer
	// sema bounds concurrent analysis/profiling work across all
	// indexing calls on this catalog.
	sema chan struct{}

	mu          sync.Mutex
	sem         *index.SemanticIndex // guarded by mu
	res         *index.ResourceIndex // guarded by mu
	defaultRefs map[string]string    // guarded by mu

	snap atomic.Pointer[Snapshot]
}

// New creates an empty catalog.
func New(cfg Config) *Catalog {
	c := &Catalog{
		cfg:         cfg,
		obs:         cfg.Observer,
		profiler:    resource.NewProfiler(cfg.LatencyTable),
		sema:        make(chan struct{}, cfg.workers()),
		sem:         index.NewSemanticIndex(cfg.Seed + 1),
		res:         index.NewResourceIndex(cfg.Seed + 2),
		defaultRefs: make(map[string]string),
	}
	if cfg.SampleSize > 0 {
		c.sem.SampleSize = cfg.SampleSize
	}
	c.analyzer = cfg.Analyzer
	if c.analyzer == nil {
		c.analyzer = newPairAnalyzer(cfg)
	}
	c.registerGauges()
	c.mu.Lock()
	c.publishLocked()
	c.mu.Unlock()
	return c
}

// registerGauges folds the index sizes into the unified snapshot as
// snapshot-time callbacks — no write-path bookkeeping, the gauges read
// the live structures under the writer lock when asked.
func (c *Catalog) registerGauges() {
	reg := c.obs.Registry()
	if reg == nil {
		return
	}
	semStat := func() index.Stats {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.sem.Stats()
	}
	reg.GaugeFunc("catalog_semantic_models", func() int64 { return int64(semStat().Models) })
	reg.GaugeFunc("catalog_semantic_candidates", func() int64 { return int64(semStat().Candidates) })
	reg.GaugeFunc("catalog_semantic_derived", func() int64 { return int64(semStat().Derived) })
	reg.GaugeFunc("catalog_semantic_synthesized", func() int64 { return int64(semStat().Synthesized) })
	reg.GaugeFunc("catalog_resource_profiles", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.res.Len())
	})
}

// Profiler returns the catalog's resource profiler (safe for concurrent
// use), so callers can re-profile models under non-default execution
// settings.
func (c *Catalog) Profiler() *resource.Profiler { return c.profiler }

// SetDefaultReference sets the reference model used when a query names
// a task category instead of a model (§5.1).
func (c *Catalog) SetDefaultReference(task, id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.sem.Contains(id) {
		return fmt.Errorf("catalog: %q is not indexed", id)
	}
	c.defaultRefs[task] = id
	c.publishLocked()
	return nil
}

// noteDefaultRefLocked makes the first indexed model of a task category
// that category's default reference. Callers hold c.mu.
func (c *Catalog) noteDefaultRefLocked(id string, m *graph.Model) {
	task := string(m.Task)
	if _, ok := c.defaultRefs[task]; !ok {
		c.defaultRefs[task] = id
	}
}

// Annotate records designer-supplied equivalence levels (§5.5) between
// an indexed model and other indexed models, symmetrically. The
// annotation commits atomically: every referenced ID is validated
// under the writer lock before any edge is applied, so a bad reference
// leaves the index untouched.
func (c *Catalog) Annotate(id string, levels map[string]float64) error {
	for other, lvl := range levels {
		if lvl < 0 || lvl > 1 {
			return fmt.Errorf("catalog: annotation level %g for %q outside [0,1]", lvl, other)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.sem.Contains(id) {
		return fmt.Errorf("catalog: %q is not indexed", id)
	}
	others := make([]string, 0, len(levels))
	for other := range levels {
		others = append(others, other)
	}
	sort.Strings(others)
	for _, other := range others {
		if !c.sem.Contains(other) {
			return fmt.Errorf("catalog: annotation references unindexed model %q", other)
		}
	}
	var own []index.Candidate
	for _, other := range others {
		lvl := levels[other]
		own = append(own, index.Candidate{ID: other, Level: lvl, Kind: index.KindWhole})
		if err := c.sem.InsertPrecomputed(other, []index.Candidate{
			{ID: id, Level: lvl, Kind: index.KindWhole},
		}); err != nil {
			return err
		}
	}
	if len(own) > 0 {
		if err := c.sem.InsertPrecomputed(id, own); err != nil {
			return err
		}
	}
	c.publishLocked()
	return nil
}

// MemoryBytes reports the two indexes' in-memory footprints (semantic,
// resource) for the Table 4 experiment.
func (c *Catalog) MemoryBytes() (semantic, res int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sem.MemoryBytes(), c.res.MemoryBytes()
}

// Export captures the catalog's serializable state (§5.5 persistence):
// both index snapshots plus the default-reference table.
func (c *Catalog) Export() (index.SemanticSnapshot, index.ResourceSnapshot, map[string]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	refs := make(map[string]string, len(c.defaultRefs))
	for k, v := range c.defaultRefs {
		refs[k] = v
	}
	return c.sem.Snapshot(), c.res.Snapshot(), refs
}

// Restore replaces the catalog's contents with previously exported
// state. resolve maps model IDs back to graphs (normally repo.Load) so
// future insertions can analyze against restored entries.
func (c *Catalog) Restore(sem index.SemanticSnapshot, res index.ResourceSnapshot,
	refs map[string]string, resolve func(id string) (*graph.Model, error)) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sem.Restore(sem, resolve); err != nil {
		return err
	}
	if err := c.res.Restore(res); err != nil {
		return err
	}
	c.defaultRefs = make(map[string]string, len(refs))
	for k, v := range refs {
		c.defaultRefs[k] = v
	}
	c.publishLocked()
	return nil
}
