package catalog

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/index"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

// silentAnalyzer reports no equivalence at all — useful when a test
// wants the index populated without any analysis-derived edges.
type silentAnalyzer struct{}

func (silentAnalyzer) Analyze(ref, cand index.Entry) (index.AnalysisResult, error) {
	return index.AnalysisResult{}, nil
}

func testModel(t testing.TB, name string, seed uint64) *index.Entry {
	t.Helper()
	m, err := zoo.DenseResidualNet(zoo.Config{Name: name, Seed: seed, Width: 8, Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	return &index.Entry{ID: name + "@v1", Model: m}
}

func TestAnnotateAtomic(t *testing.T) {
	c := New(Config{Seed: 1, Analyzer: silentAnalyzer{}})
	a := testModel(t, "a", 1)
	b := testModel(t, "b", 2)
	if err := c.Index(context.Background(), a.ID, a.Model); err != nil {
		t.Fatal(err)
	}
	if err := c.Index(context.Background(), b.ID, b.Model); err != nil {
		t.Fatal(err)
	}

	// One bad reference must leave every edge unapplied — including the
	// valid b edge staged before the bad one is reached.
	err := c.Annotate(a.ID, map[string]float64{b.ID: 0.9, "ghost@v1": 0.8})
	if err == nil {
		t.Fatal("expected error for unindexed annotation reference")
	}
	for _, id := range []string{a.ID, b.ID} {
		cands, err := c.Snapshot().Lookup(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) != 0 {
			t.Fatalf("partial annotation applied: %q has %d candidates", id, len(cands))
		}
	}

	// Out-of-range levels are rejected before touching the index.
	if err := c.Annotate(a.ID, map[string]float64{b.ID: 1.5}); err == nil {
		t.Fatal("expected error for out-of-range level")
	}

	// A fully valid annotation lands symmetrically.
	if err := c.Annotate(a.ID, map[string]float64{b.ID: 0.9}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Snapshot().Lookup(b.ID, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != a.ID || got[0].Level != 0.9 {
		t.Fatalf("symmetric annotation edge missing: %+v", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	c := New(Config{Seed: 2, Analyzer: silentAnalyzer{}})
	a := testModel(t, "iso-a", 3)
	if err := c.Index(context.Background(), a.ID, a.Model); err != nil {
		t.Fatal(err)
	}
	old := c.Snapshot()
	if old.Len() != 1 || !old.Contains(a.ID) {
		t.Fatalf("snapshot before second commit: len=%d", old.Len())
	}

	b := testModel(t, "iso-b", 4)
	if err := c.Index(context.Background(), b.ID, b.Model); err != nil {
		t.Fatal(err)
	}
	// The old snapshot is immutable: the new commit must not leak into it.
	if old.Len() != 1 || old.Contains(b.ID) {
		t.Fatalf("old snapshot mutated: len=%d contains(b)=%v", old.Len(), old.Contains(b.ID))
	}
	if _, ok := old.Profile(b.ID); ok {
		t.Fatal("old snapshot sees new profile")
	}
	cur := c.Snapshot()
	if cur.Len() != 2 || !cur.Contains(b.ID) {
		t.Fatalf("current snapshot stale: len=%d", cur.Len())
	}
}

func TestIndexBatchSkipsDuplicates(t *testing.T) {
	c := New(Config{Seed: 3, Analyzer: silentAnalyzer{}})
	a := testModel(t, "dup-a", 5)
	if err := c.Index(context.Background(), a.ID, a.Model); err != nil {
		t.Fatal(err)
	}
	b := testModel(t, "dup-b", 6)
	n, err := c.IndexBatch(context.Background(), []index.Entry{*a, *b, *b})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("committed %d models, want 1 (a pre-indexed, b duplicated in batch)", n)
	}
	if c.Snapshot().Len() != 2 {
		t.Fatalf("snapshot len = %d, want 2", c.Snapshot().Len())
	}
}

// exportJSON serializes the catalog's full persistent state; byte
// equality of two exports means byte-identical index contents.
func exportJSON(t *testing.T, c *Catalog) []byte {
	t.Helper()
	sem, res, refs := c.Export()
	data, err := json.Marshal(struct {
		Sem  index.SemanticSnapshot
		Res  index.ResourceSnapshot
		Refs map[string]string
	}{sem, res, refs})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestIndexBatchDeterministicAcrossWorkers(t *testing.T) {
	var entries []index.Entry
	for i := 0; i < 8; i++ {
		e := testModel(t, fmt.Sprintf("det-%d", i), uint64(10+i))
		entries = append(entries, *e)
	}

	build := func(workers int) *Catalog {
		c := New(Config{Seed: 7, Workers: workers, ValidationSize: 40})
		if _, err := c.IndexBatch(context.Background(), entries); err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := exportJSON(t, build(1))
	parallel := exportJSON(t, build(4))
	if string(serial) != string(parallel) {
		t.Fatal("IndexBatch results differ between 1 and 4 workers")
	}

	// Serial Index calls must also match the batch path exactly.
	c := New(Config{Seed: 7, Workers: 1, ValidationSize: 40})
	for _, e := range entries {
		if err := c.Index(context.Background(), e.ID, e.Model); err != nil {
			t.Fatal(err)
		}
	}
	if oneByOne := exportJSON(t, c); string(oneByOne) != string(serial) {
		t.Fatal("serial Index calls differ from IndexBatch")
	}
}

func TestProbeCacheCustomDataset(t *testing.T) {
	custom := &dataset.Dataset{
		Name:   "custom",
		Inputs: dataset.RandomImages(20, tensor.Shape{16}, 99),
	}
	a := newPairAnalyzer(Config{Seed: 1, ValidationSize: 30, CustomValidation: custom})

	match, err := zoo.DenseResidualNet(zoo.Config{Name: "cv", Seed: 4, InDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.probes.For(match); got != custom {
		t.Fatal("custom validation dataset not used for matching shape")
	}
	other, err := zoo.ConvNet(zoo.Config{Name: "conv", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gen := a.probes.For(other)
	if gen == custom {
		t.Fatal("custom dataset applied to mismatched shape")
	}
	if again := a.probes.For(other); again != gen {
		t.Fatal("generated probe dataset not cached")
	}
}
