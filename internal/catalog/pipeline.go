package catalog

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/resource"
)

// The indexing pipeline has three stages:
//
//	profile/plan → pairwise-analyze → commit
//
// Only planning and commit take the writer lock, and both are cheap:
// planning draws the pairwise sample (consuming the index RNG in
// canonical order), commit applies precomputed measurements. The
// expensive middle stage — equivalence analysis and resource profiling
// — runs outside any lock, fanned out across the worker pool. For a
// fixed seed the committed index is byte-identical to serial insertion
// regardless of worker count: the RNG sequence is fixed at plan time
// and commits land in plan order.
//
// Both entry points are context-aware: cancellation drains the worker
// pool (queued tasks exit without running) and returns before commit,
// so a canceled batch commits nothing. Every stage reports its timing
// through the catalog's observer — plan/analyze/commit histograms, a
// busy-worker gauge, and a span tree rooted at the indexing call.

// Index profiles, analyzes, and commits one model. Indexing an
// already indexed ID fails with an error wrapping
// index.ErrAlreadyIndexed. A canceled ctx aborts before commit.
func (c *Catalog) Index(ctx context.Context, id string, m *graph.Model) error {
	if id == "" || m == nil {
		return fmt.Errorf("catalog: index needs an ID and a model")
	}
	ctx, root := c.obs.StartSpan(ctx, "catalog.index", id)
	defer root.End()

	_, pspan := c.obs.StartSpan(ctx, "profile", "")
	prof, err := c.profiler.Measure(m)
	c.obs.Histogram("catalog_profile_ms").Observe(pspan.End())
	if err != nil {
		c.obs.Counter("catalog_index_errors_total").Inc()
		return fmt.Errorf("catalog: profiling %q: %w", id, err)
	}

	entry := index.Entry{ID: id, Model: m}
	_, span := c.obs.StartSpan(ctx, "plan", "")
	c.mu.Lock()
	if c.sem.Contains(id) {
		c.mu.Unlock()
		span.End()
		return fmt.Errorf("catalog: model %q %w", id, index.ErrAlreadyIndexed)
	}
	plan := c.sem.PlanInserts([]index.Entry{entry})[0]
	partners := make([]index.Entry, len(plan.Partners))
	for i, pid := range plan.Partners {
		pe, ok := c.sem.EntryOf(pid)
		if !ok {
			c.mu.Unlock()
			span.End()
			return fmt.Errorf("catalog: planned partner %q unknown", pid)
		}
		partners[i] = pe
	}
	c.mu.Unlock()
	c.obs.Histogram("catalog_plan_ms").Observe(span.End())

	meas, err := c.analyzePlanned(ctx, entry, partners)
	if err != nil {
		c.obs.Counter("catalog_index_errors_total").Inc()
		return err
	}

	_, span = c.obs.StartSpan(ctx, "commit", "")
	defer func() { c.obs.Histogram("catalog_commit_ms").Observe(span.End()) }()
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sem.CommitPlanned(entry, meas); err != nil {
		if errors.Is(err, index.ErrAlreadyIndexed) {
			return fmt.Errorf("catalog: model %q %w", id, index.ErrAlreadyIndexed)
		}
		return err
	}
	if err := c.res.Insert(id, prof); err != nil {
		return err
	}
	c.noteDefaultRefLocked(id, m)
	c.publishLocked()
	c.obs.Counter("catalog_models_indexed_total").Inc()
	return nil
}

// IndexBatch indexes a set of models through the staged pipeline,
// analyzing all planned pairs concurrently. Entries already indexed —
// whether before the call or by a concurrent writer between planning
// and commit — are skipped, not errors; in-batch duplicate IDs keep
// the first occurrence. It returns the number of models committed.
//
// Cancellation mid-analysis drains the worker pool and returns
// ctx.Err() with nothing committed: the commit stage only runs for a
// batch whose analysis completed.
//
// For a fixed catalog seed, IndexBatch over the same entry order
// produces an index byte-identical to serial Index calls, at any
// worker count.
func (c *Catalog) IndexBatch(ctx context.Context, entries []index.Entry) (int, error) {
	ctx, root := c.obs.StartSpan(ctx, "catalog.indexall", "")
	defer root.End()

	// Stage 1 (plan, short lock): filter out known and duplicate IDs,
	// then draw every pairwise sample up-front in canonical order.
	// Later batch entries may sample earlier ones, so partner graphs
	// resolve from either the committed index or the batch itself.
	_, span := c.obs.StartSpan(ctx, "plan", "")
	c.mu.Lock()
	var fresh []index.Entry
	inBatch := make(map[string]*graph.Model, len(entries))
	for _, e := range entries {
		if e.ID == "" || e.Model == nil {
			c.mu.Unlock()
			span.End()
			return 0, fmt.Errorf("catalog: batch entry must have an ID and a model")
		}
		if c.sem.Contains(e.ID) || inBatch[e.ID] != nil {
			continue
		}
		inBatch[e.ID] = e.Model
		fresh = append(fresh, e)
	}
	plans := c.sem.PlanInserts(fresh)
	partnerEntries := make([][]index.Entry, len(plans))
	for i, plan := range plans {
		ps := make([]index.Entry, len(plan.Partners))
		for j, pid := range plan.Partners {
			if pe, ok := c.sem.EntryOf(pid); ok {
				ps[j] = pe
			} else if m := inBatch[pid]; m != nil {
				ps[j] = index.Entry{ID: pid, Model: m}
			} else {
				c.mu.Unlock()
				span.End()
				return 0, fmt.Errorf("catalog: planned partner %q unknown", pid)
			}
		}
		partnerEntries[i] = ps
	}
	c.mu.Unlock()
	c.obs.Histogram("catalog_plan_ms").Observe(span.End())

	// Stage 2 (analyze, no lock): profile every model and measure
	// every planned pair, bounded by the worker pool. Each task writes
	// its own slot, so no synchronization beyond the WaitGroup. A
	// canceled ctx makes queued tasks exit without running.
	ctx, stage := c.obs.StartSpan(ctx, "analyze", "")
	profs := make([]resource.Profile, len(plans))
	profErrs := make([]error, len(plans))
	measured := make([][]index.PairMeasurement, len(plans))
	pairErrs := make([][]error, len(plans))
	var wg sync.WaitGroup
	for i := range plans {
		i := i
		measured[i] = make([]index.PairMeasurement, len(partnerEntries[i]))
		pairErrs[i] = make([]error, len(partnerEntries[i]))
		c.runTask(ctx, &wg, "profile", plans[i].Entry.ID, func() {
			p, err := c.profiler.Measure(plans[i].Entry.Model)
			if err != nil {
				profErrs[i] = fmt.Errorf("catalog: profiling %q: %w", plans[i].Entry.ID, err)
				return
			}
			profs[i] = p
		})
		for j := range partnerEntries[i] {
			j := j
			c.runTask(ctx, &wg, "pair", plans[i].Entry.ID+"~"+partnerEntries[i][j].ID, func() {
				res, err := c.analyzer.Analyze(plans[i].Entry, partnerEntries[i][j])
				if err != nil {
					pairErrs[i][j] = fmt.Errorf("catalog: analyzing %q vs %q: %w",
						plans[i].Entry.ID, partnerEntries[i][j].ID, err)
					return
				}
				measured[i][j] = index.PairMeasurement{Partner: partnerEntries[i][j].ID, Result: res}
			})
		}
	}
	wg.Wait()
	c.obs.Histogram("catalog_analyze_ms").Observe(stage.End())
	if err := ctx.Err(); err != nil {
		c.obs.Counter("catalog_index_canceled_total").Inc()
		return 0, err
	}

	// Stage 3 (commit, short lock): apply measurements in plan order.
	// A commit that finds its ID already indexed lost a race with a
	// concurrent writer and is skipped — the check-then-insert pair
	// lives inside one critical section, so there is no window for
	// double insertion. The snapshot publishes once, on the way out,
	// covering both full and partial (error) commits.
	_, span = c.obs.StartSpan(ctx, "commit", "")
	defer func() { c.obs.Histogram("catalog_commit_ms").Observe(span.End()) }()
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.publishLocked()
	committed := 0
	for i, plan := range plans {
		if profErrs[i] != nil {
			c.obs.Counter("catalog_index_errors_total").Inc()
			return committed, profErrs[i]
		}
		for _, err := range pairErrs[i] {
			if err != nil {
				c.obs.Counter("catalog_index_errors_total").Inc()
				return committed, err
			}
		}
		if err := c.sem.CommitPlanned(plan.Entry, measured[i]); err != nil {
			if errors.Is(err, index.ErrAlreadyIndexed) {
				continue
			}
			return committed, err
		}
		if err := c.res.Insert(plan.Entry.ID, profs[i]); err != nil {
			return committed, err
		}
		c.noteDefaultRefLocked(plan.Entry.ID, plan.Entry.Model)
		committed++
	}
	c.obs.Counter("catalog_models_indexed_total").Add(int64(committed))
	return committed, nil
}

// runTask schedules fn on the bounded worker pool, tracking occupancy
// and wrapping the work in a span parented to ctx's current span. A ctx
// canceled before the task acquires a worker slot skips fn entirely;
// the batch's post-wait ctx.Err() check turns that into the caller's
// error.
func (c *Catalog) runTask(ctx context.Context, wg *sync.WaitGroup, name, detail string, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case c.sema <- struct{}{}:
		case <-ctx.Done():
			return
		}
		defer func() { <-c.sema }()
		if ctx.Err() != nil {
			return
		}
		c.obs.Gauge("catalog_workers_busy").Add(1)
		defer c.obs.Gauge("catalog_workers_busy").Add(-1)
		c.obs.Counter("catalog_tasks_total").Inc()
		_, span := c.obs.StartSpan(ctx, name, detail)
		defer span.End()
		fn()
	}()
}

// analyzePlanned measures one entry against its planned partners,
// fanning the pairs out across the worker pool. Measurements return in
// partner (plan) order. Cancellation drains the pool and reports
// ctx.Err().
func (c *Catalog) analyzePlanned(ctx context.Context, e index.Entry, partners []index.Entry) ([]index.PairMeasurement, error) {
	ctx, stage := c.obs.StartSpan(ctx, "analyze", "")
	meas := make([]index.PairMeasurement, len(partners))
	errs := make([]error, len(partners))
	var wg sync.WaitGroup
	for i, p := range partners {
		i, p := i, p
		c.runTask(ctx, &wg, "pair", e.ID+"~"+p.ID, func() {
			res, err := c.analyzer.Analyze(e, p)
			if err != nil {
				errs[i] = fmt.Errorf("catalog: analyzing %q vs %q: %w", e.ID, p.ID, err)
				return
			}
			meas[i] = index.PairMeasurement{Partner: p.ID, Result: res}
		})
	}
	wg.Wait()
	c.obs.Histogram("catalog_analyze_ms").Observe(stage.End())
	if err := ctx.Err(); err != nil {
		c.obs.Counter("catalog_index_canceled_total").Inc()
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return meas, nil
}
