package catalog

import (
	"errors"
	"fmt"
	"sync"

	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/resource"
)

// The indexing pipeline has three stages:
//
//	profile/plan → pairwise-analyze → commit
//
// Only planning and commit take the writer lock, and both are cheap:
// planning draws the pairwise sample (consuming the index RNG in
// canonical order), commit applies precomputed measurements. The
// expensive middle stage — equivalence analysis and resource profiling
// — runs outside any lock, fanned out across the worker pool. For a
// fixed seed the committed index is byte-identical to serial insertion
// regardless of worker count: the RNG sequence is fixed at plan time
// and commits land in plan order.

// Index profiles, analyzes, and commits one model. Indexing an
// already indexed ID fails with an error wrapping
// index.ErrAlreadyIndexed.
func (c *Catalog) Index(id string, m *graph.Model) error {
	if id == "" || m == nil {
		return fmt.Errorf("catalog: index needs an ID and a model")
	}
	prof, err := c.profiler.Measure(m)
	if err != nil {
		return fmt.Errorf("catalog: profiling %q: %w", id, err)
	}

	entry := index.Entry{ID: id, Model: m}
	c.mu.Lock()
	if c.sem.Contains(id) {
		c.mu.Unlock()
		return fmt.Errorf("catalog: model %q %w", id, index.ErrAlreadyIndexed)
	}
	plan := c.sem.PlanInserts([]index.Entry{entry})[0]
	partners := make([]index.Entry, len(plan.Partners))
	for i, pid := range plan.Partners {
		pe, ok := c.sem.EntryOf(pid)
		if !ok {
			c.mu.Unlock()
			return fmt.Errorf("catalog: planned partner %q unknown", pid)
		}
		partners[i] = pe
	}
	c.mu.Unlock()

	meas, err := c.analyzePlanned(entry, partners)
	if err != nil {
		return err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.sem.CommitPlanned(entry, meas); err != nil {
		if errors.Is(err, index.ErrAlreadyIndexed) {
			return fmt.Errorf("catalog: model %q %w", id, index.ErrAlreadyIndexed)
		}
		return err
	}
	if err := c.res.Insert(id, prof); err != nil {
		return err
	}
	c.noteDefaultRefLocked(id, m)
	c.publishLocked()
	return nil
}

// IndexBatch indexes a set of models through the staged pipeline,
// analyzing all planned pairs concurrently. Entries already indexed —
// whether before the call or by a concurrent writer between planning
// and commit — are skipped, not errors; in-batch duplicate IDs keep
// the first occurrence. It returns the number of models committed.
//
// For a fixed catalog seed, IndexBatch over the same entry order
// produces an index byte-identical to serial Index calls, at any
// worker count.
func (c *Catalog) IndexBatch(entries []index.Entry) (int, error) {
	// Stage 1 (plan, short lock): filter out known and duplicate IDs,
	// then draw every pairwise sample up-front in canonical order.
	// Later batch entries may sample earlier ones, so partner graphs
	// resolve from either the committed index or the batch itself.
	c.mu.Lock()
	var fresh []index.Entry
	inBatch := make(map[string]*graph.Model, len(entries))
	for _, e := range entries {
		if e.ID == "" || e.Model == nil {
			c.mu.Unlock()
			return 0, fmt.Errorf("catalog: batch entry must have an ID and a model")
		}
		if c.sem.Contains(e.ID) || inBatch[e.ID] != nil {
			continue
		}
		inBatch[e.ID] = e.Model
		fresh = append(fresh, e)
	}
	plans := c.sem.PlanInserts(fresh)
	partnerEntries := make([][]index.Entry, len(plans))
	for i, plan := range plans {
		ps := make([]index.Entry, len(plan.Partners))
		for j, pid := range plan.Partners {
			if pe, ok := c.sem.EntryOf(pid); ok {
				ps[j] = pe
			} else if m := inBatch[pid]; m != nil {
				ps[j] = index.Entry{ID: pid, Model: m}
			} else {
				c.mu.Unlock()
				return 0, fmt.Errorf("catalog: planned partner %q unknown", pid)
			}
		}
		partnerEntries[i] = ps
	}
	c.mu.Unlock()

	// Stage 2 (analyze, no lock): profile every model and measure
	// every planned pair, bounded by the worker pool. Each task writes
	// its own slot, so no synchronization beyond the WaitGroup.
	profs := make([]resource.Profile, len(plans))
	profErrs := make([]error, len(plans))
	measured := make([][]index.PairMeasurement, len(plans))
	pairErrs := make([][]error, len(plans))
	var wg sync.WaitGroup
	run := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.sema <- struct{}{}
			defer func() { <-c.sema }()
			fn()
		}()
	}
	for i := range plans {
		i := i
		measured[i] = make([]index.PairMeasurement, len(partnerEntries[i]))
		pairErrs[i] = make([]error, len(partnerEntries[i]))
		run(func() {
			p, err := c.profiler.Measure(plans[i].Entry.Model)
			if err != nil {
				profErrs[i] = fmt.Errorf("catalog: profiling %q: %w", plans[i].Entry.ID, err)
				return
			}
			profs[i] = p
		})
		for j := range partnerEntries[i] {
			j := j
			run(func() {
				res, err := c.analyzer.Analyze(plans[i].Entry, partnerEntries[i][j])
				if err != nil {
					pairErrs[i][j] = fmt.Errorf("catalog: analyzing %q vs %q: %w",
						plans[i].Entry.ID, partnerEntries[i][j].ID, err)
					return
				}
				measured[i][j] = index.PairMeasurement{Partner: partnerEntries[i][j].ID, Result: res}
			})
		}
	}
	wg.Wait()

	// Stage 3 (commit, short lock): apply measurements in plan order.
	// A commit that finds its ID already indexed lost a race with a
	// concurrent writer and is skipped — the check-then-insert pair
	// lives inside one critical section, so there is no window for
	// double insertion. The snapshot publishes once, on the way out,
	// covering both full and partial (error) commits.
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.publishLocked()
	committed := 0
	for i, plan := range plans {
		if profErrs[i] != nil {
			return committed, profErrs[i]
		}
		for _, err := range pairErrs[i] {
			if err != nil {
				return committed, err
			}
		}
		if err := c.sem.CommitPlanned(plan.Entry, measured[i]); err != nil {
			if errors.Is(err, index.ErrAlreadyIndexed) {
				continue
			}
			return committed, err
		}
		if err := c.res.Insert(plan.Entry.ID, profs[i]); err != nil {
			return committed, err
		}
		c.noteDefaultRefLocked(plan.Entry.ID, plan.Entry.Model)
		committed++
	}
	return committed, nil
}

// analyzePlanned measures one entry against its planned partners,
// fanning the pairs out across the worker pool. Measurements return in
// partner (plan) order.
func (c *Catalog) analyzePlanned(e index.Entry, partners []index.Entry) ([]index.PairMeasurement, error) {
	meas := make([]index.PairMeasurement, len(partners))
	errs := make([]error, len(partners))
	var wg sync.WaitGroup
	for i, p := range partners {
		wg.Add(1)
		go func(i int, p index.Entry) {
			defer wg.Done()
			c.sema <- struct{}{}
			defer func() { <-c.sema }()
			res, err := c.analyzer.Analyze(e, p)
			if err != nil {
				errs[i] = fmt.Errorf("catalog: analyzing %q vs %q: %w", e.ID, p.ID, err)
				return
			}
			meas[i] = index.PairMeasurement{Partner: p.ID, Result: res}
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return meas, nil
}
