package catalog

import (
	"sync"

	"sommelier/internal/resource"
)

// ReprofileKey identifies one (model, execution-setting) measurement.
// ExecSetting is a flat value struct, so the key is comparable and two
// queries asking for the same model under the same EXEC spec share one
// entry.
type ReprofileKey struct {
	ID      string
	Setting resource.ExecSetting
}

// ReprofileMemo deduplicates expensive re-profiling work (store.Load +
// Profiler.MeasureWith) across the queries of one batch. A model that
// appears as a candidate of many queries under the same EXEC setting is
// loaded and measured exactly once; every other query blocks on — and
// then shares — that first measurement. Measurement is deterministic
// for a fixed (model, setting), so sharing never changes results, only
// how much work produces them.
//
// The memo is scoped to one batch (or one serial query): it caches
// against a single catalog snapshot and must not outlive it.
type ReprofileMemo struct {
	mu      sync.Mutex
	entries map[ReprofileKey]*memoEntry // guarded by mu
}

// memoEntry is one measurement slot. The once runs the measurement
// outside the memo's map lock, so concurrent queries asking for
// *different* models never serialize on each other's I/O.
type memoEntry struct {
	once sync.Once
	prof resource.Profile
	err  error
}

// NewReprofileMemo returns an empty memo.
func NewReprofileMemo() *ReprofileMemo {
	return &ReprofileMemo{entries: make(map[ReprofileKey]*memoEntry)}
}

// Profile returns the memoized measurement for key, running measure at
// most once per key across all callers. Errors are memoized too: a
// model that fails to load fails identically for every query in the
// batch instead of being retried per query.
func (m *ReprofileMemo) Profile(key ReprofileKey, measure func() (resource.Profile, error)) (resource.Profile, error) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry{}
		m.entries[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() { e.prof, e.err = measure() })
	return e.prof, e.err
}

// Len reports how many distinct (model, setting) measurements the memo
// holds — the number of Load+Measure round trips actually performed (or
// in flight).
func (m *ReprofileMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
