package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"sommelier/internal/tensor"
)

// TaskKind classifies what a model's output means (§4.1: classification
// semantics live in the argmax dimension, regression in the whole vector).
type TaskKind string

const (
	TaskClassification TaskKind = "classification"
	TaskRegression     TaskKind = "regression"
)

// Layer is one node of the model DAG: an operator plus its attributes and
// parameter tensors (the grey and blue boxes of Figure 2).
type Layer struct {
	Name   string
	Op     OpKind
	Inputs []string
	Attrs  Attrs
	Params map[string]*tensor.Tensor
}

// Param returns the named parameter tensor or nil.
func (l *Layer) Param(name string) *tensor.Tensor {
	if l.Params == nil {
		return nil
	}
	return l.Params[name]
}

// ParamNames returns the layer's parameter names in sorted order. Any
// code that consumes randomness per parameter must iterate in this order
// to stay deterministic across runs.
func (l *Layer) ParamNames() []string {
	names := make([]string, 0, len(l.Params))
	for n := range l.Params {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParamCount returns the number of scalar parameters in the layer.
func (l *Layer) ParamCount() int64 {
	var n int64
	for _, p := range l.Params {
		n += int64(p.NumElements())
	}
	return n
}

// Clone returns a deep copy of the layer.
func (l *Layer) Clone() *Layer {
	c := &Layer{Name: l.Name, Op: l.Op, Attrs: l.Attrs}
	c.Inputs = append([]string(nil), l.Inputs...)
	if l.Params != nil {
		c.Params = make(map[string]*tensor.Tensor, len(l.Params))
		for k, v := range l.Params {
			c.Params[k] = v.Clone()
		}
	}
	return c
}

// Model is a complete DNN: a named DAG of layers with an input
// specification, task kind, and optional output syntax labels.
type Model struct {
	Name    string
	Version string
	Task    TaskKind
	// InputShape is the per-sample input shape (no batch dimension).
	InputShape tensor.Shape
	// Preprocessor names a registered input preprocessor; when both
	// models in a comparison declare one, the strict input-shape check
	// of §4.1 is skipped in favor of the preprocessor identity.
	Preprocessor string
	// OutputLabels gives the syntax of each classification output
	// dimension (e.g. index 3 → "cat"); empty for regression.
	OutputLabels []string
	Layers       []*Layer
	Metadata     map[string]string
}

// Layer returns the named layer or nil.
func (m *Model) Layer(name string) *Layer {
	for _, l := range m.Layers {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// InputLayer returns the model's Input layer, or nil when absent.
func (m *Model) InputLayer() *Layer {
	for _, l := range m.Layers {
		if l.Op == OpInput {
			return l
		}
	}
	return nil
}

// ParamCount returns the number of scalar parameters across all layers.
func (m *Model) ParamCount() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.ParamCount()
	}
	return n
}

// Clone returns a deep copy of the model, including parameter tensors.
func (m *Model) Clone() *Model {
	c := &Model{
		Name:         m.Name,
		Version:      m.Version,
		Task:         m.Task,
		InputShape:   m.InputShape.Clone(),
		Preprocessor: m.Preprocessor,
	}
	c.OutputLabels = append([]string(nil), m.OutputLabels...)
	c.Layers = make([]*Layer, len(m.Layers))
	for i, l := range m.Layers {
		c.Layers[i] = l.Clone()
	}
	if m.Metadata != nil {
		c.Metadata = make(map[string]string, len(m.Metadata))
		for k, v := range m.Metadata {
			c.Metadata[k] = v
		}
	}
	return c
}

// TopoSort returns the layers in a dependency-respecting order. It returns
// an error if the graph has a cycle or references an unknown layer.
func (m *Model) TopoSort() ([]*Layer, error) {
	byName := make(map[string]*Layer, len(m.Layers))
	for _, l := range m.Layers {
		if _, dup := byName[l.Name]; dup {
			return nil, fmt.Errorf("graph: duplicate layer name %q", l.Name)
		}
		byName[l.Name] = l
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(m.Layers))
	order := make([]*Layer, 0, len(m.Layers))
	var visit func(l *Layer) error
	visit = func(l *Layer) error {
		switch state[l.Name] {
		case grey:
			return fmt.Errorf("graph: cycle through layer %q", l.Name)
		case black:
			return nil
		}
		state[l.Name] = grey
		for _, in := range l.Inputs {
			dep, ok := byName[in]
			if !ok {
				return fmt.Errorf("graph: layer %q references unknown input %q", l.Name, in)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[l.Name] = black
		order = append(order, l)
		return nil
	}
	// Visit in declaration order for a deterministic result.
	for _, l := range m.Layers {
		if err := visit(l); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// ShapeOf runs shape inference over the whole model and returns the output
// shape of every layer. It is the static type-check that fronts the
// whole-model equivalence pipeline.
func (m *Model) ShapeOf() (map[string]tensor.Shape, error) {
	order, err := m.TopoSort()
	if err != nil {
		return nil, err
	}
	shapes := make(map[string]tensor.Shape, len(order))
	for _, l := range order {
		if l.Op == OpInput {
			if !m.InputShape.Valid() {
				return nil, fmt.Errorf("graph: model %q has invalid input shape %v", m.Name, m.InputShape)
			}
			shapes[l.Name] = m.InputShape.Clone()
			continue
		}
		in := make([]tensor.Shape, len(l.Inputs))
		for i, name := range l.Inputs {
			in[i] = shapes[name]
		}
		out, err := InferShape(l.Op, l.Attrs, in)
		if err != nil {
			return nil, fmt.Errorf("graph: layer %q: %w", l.Name, err)
		}
		shapes[l.Name] = out
	}
	return shapes, nil
}

// OutputLayerName returns the unique sink layer (consumed by no other
// layer). Models with several sinks return an error; Sommelier's pipeline
// analyzes single-output models, as does the paper's.
func (m *Model) OutputLayerName() (string, error) {
	consumed := make(map[string]bool)
	for _, l := range m.Layers {
		for _, in := range l.Inputs {
			consumed[in] = true
		}
	}
	var sinks []string
	for _, l := range m.Layers {
		if !consumed[l.Name] {
			sinks = append(sinks, l.Name)
		}
	}
	switch len(sinks) {
	case 1:
		return sinks[0], nil
	case 0:
		return "", fmt.Errorf("graph: model %q has no output layer (cycle?)", m.Name)
	default:
		sort.Strings(sinks)
		return "", fmt.Errorf("graph: model %q has %d output layers %v", m.Name, len(sinks), sinks)
	}
}

// OutputShape returns the shape of the model's output layer.
func (m *Model) OutputShape() (tensor.Shape, error) {
	shapes, err := m.ShapeOf()
	if err != nil {
		return nil, err
	}
	out, err := m.OutputLayerName()
	if err != nil {
		return nil, err
	}
	return shapes[out], nil
}

// Validate checks structural well-formedness: exactly one Input layer,
// valid operator kinds, an acyclic graph, successful shape inference, a
// single output, and parameter tensors matching their specs.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("graph: model has no name")
	}
	inputs := 0
	for _, l := range m.Layers {
		if !l.Op.Valid() {
			return fmt.Errorf("graph: layer %q has unknown op %q", l.Name, l.Op)
		}
		if l.Op == OpInput {
			inputs++
			if len(l.Inputs) != 0 {
				return fmt.Errorf("graph: input layer %q must have no inputs", l.Name)
			}
		} else if len(l.Inputs) == 0 {
			return fmt.Errorf("graph: layer %q has no inputs", l.Name)
		}
	}
	if inputs != 1 {
		return fmt.Errorf("graph: model %q has %d input layers, want 1", m.Name, inputs)
	}
	shapes, err := m.ShapeOf()
	if err != nil {
		return err
	}
	if _, err := m.OutputLayerName(); err != nil {
		return err
	}
	for _, l := range m.Layers {
		in := make([]tensor.Shape, len(l.Inputs))
		for i, name := range l.Inputs {
			in[i] = shapes[name]
		}
		specs, err := ParamSpecs(l.Op, l.Attrs, in)
		if err != nil {
			return fmt.Errorf("graph: layer %q: %w", l.Name, err)
		}
		for _, spec := range specs {
			p := l.Param(spec.Name)
			if p == nil {
				return fmt.Errorf("graph: layer %q missing parameter %q", l.Name, spec.Name)
			}
			if !p.Shape().Equal(spec.Shape) {
				return fmt.Errorf("graph: layer %q parameter %q has shape %v, want %v",
					l.Name, spec.Name, p.Shape(), spec.Shape)
			}
		}
	}
	if m.Task == TaskClassification && len(m.OutputLabels) > 0 {
		out, err := m.OutputShape()
		if err != nil {
			return err
		}
		if out.NumElements() != len(m.OutputLabels) {
			return fmt.Errorf("graph: model %q has %d output labels for output %v",
				m.Name, len(m.OutputLabels), out)
		}
	}
	return nil
}

// Fingerprint returns a stable hex digest of the model: its structure
// (layer names, operators, attributes, wiring) plus a content digest of
// every parameter tensor. It keys the semantic index (§5.2).
func (m *Model) Fingerprint() string {
	h := sha256.New()
	write := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	write(m.Name)
	write(m.Version)
	write(string(m.Task))
	write(m.InputShape.String())
	order, err := m.TopoSort()
	if err != nil {
		// An invalid graph still gets a stable fingerprint from the
		// declaration order so callers can detect duplicates.
		order = m.Layers
	}
	var buf [8]byte
	for _, l := range order {
		write(l.Name)
		write(string(l.Op))
		for _, in := range l.Inputs {
			write(in)
		}
		write(fmt.Sprintf("%+v", l.Attrs))
		names := make([]string, 0, len(l.Params))
		for name := range l.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			p := l.Params[name]
			write(name)
			write(p.Shape().String())
			// Content digest: element count, sum, and a strided
			// sample of values. Hashing all of a 340M-parameter
			// tensor would dominate index insertion time; this
			// digest still changes whenever training or
			// perturbation touches the tensor.
			binary.LittleEndian.PutUint64(buf[:], uint64(p.NumElements()))
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.Sum()))
			h.Write(buf[:])
			data := p.Data()
			stride := len(data)/64 + 1
			for i := 0; i < len(data); i += stride {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(data[i]))
				h.Write(buf[:])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
