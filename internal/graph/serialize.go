package graph

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"sommelier/internal/chunk"
	"sommelier/internal/tensor"
)

// The SOMX wire format is the reproduction's stand-in for ONNX: a JSON
// envelope describing the DAG. Version 1 inlines parameter tensors as
// flat float arrays. Version 2 records each tensor as an ordered list of
// content addresses into an in-file chunk table (base64 of the little-
// endian payload, deduplicated across tensors), so a file shared between
// many tensors with identical content pays for the bytes once and the
// on-disk form lines up with the content-addressed store in
// internal/cas. Real Sommelier imports/exports ONNX through a Python
// shim; here the format is native so the whole pipeline stays in Go.

const (
	somxFormatV1 = 1
	somxFormatV2 = 2
)

type somxHeader struct {
	Format       int               `json:"format"`
	Name         string            `json:"name"`
	Version      string            `json:"version"`
	Task         TaskKind          `json:"task"`
	InputShape   []int             `json:"input_shape"`
	Preprocessor string            `json:"preprocessor,omitempty"`
	OutputLabels []string          `json:"output_labels,omitempty"`
	Metadata     map[string]string `json:"metadata,omitempty"`
}

type somxFileV1 struct {
	somxHeader
	Layers []somxLayerV1 `json:"layers"`
}

type somxLayerV1 struct {
	Name   string                `json:"name"`
	Op     OpKind                `json:"op"`
	Inputs []string              `json:"inputs,omitempty"`
	Attrs  Attrs                 `json:"attrs"`
	Params map[string]somxTensor `json:"params,omitempty"`
}

type somxTensor struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

type somxFileV2 struct {
	somxHeader
	Layers []somxLayerV2 `json:"layers"`
	// Chunks is the file's chunk table: content address → base64 of the
	// little-endian float64 payload. Tensors with identical content share
	// entries, so a fine-tuned model whose trunk matches its base pays
	// for those bytes once per file.
	Chunks map[string]string `json:"chunks"`
}

type somxLayerV2 struct {
	Name   string                  `json:"name"`
	Op     OpKind                  `json:"op"`
	Inputs []string                `json:"inputs,omitempty"`
	Attrs  Attrs                   `json:"attrs"`
	Params map[string]somxTensorV2 `json:"params,omitempty"`
}

type somxTensorV2 struct {
	Shape []int `json:"shape"`
	// Chunks lists the tensor's content in offset order, referencing the
	// file's chunk table.
	Chunks []string `json:"chunks"`
}

func headerOf(m *Model) somxHeader {
	return somxHeader{
		Name:         m.Name,
		Version:      m.Version,
		Task:         m.Task,
		InputShape:   m.InputShape,
		Preprocessor: m.Preprocessor,
		OutputLabels: m.OutputLabels,
		Metadata:     m.Metadata,
	}
}

func modelOf(h somxHeader, layerCount int) *Model {
	return &Model{
		Name:         h.Name,
		Version:      h.Version,
		Task:         h.Task,
		InputShape:   h.InputShape,
		Preprocessor: h.Preprocessor,
		OutputLabels: h.OutputLabels,
		Metadata:     h.Metadata,
		Layers:       make([]*Layer, layerCount),
	}
}

// Encode writes the model to w in SOMX v2, the chunked format.
func Encode(w io.Writer, m *Model) error {
	f := somxFileV2{
		somxHeader: headerOf(m),
		Layers:     make([]somxLayerV2, len(m.Layers)),
		Chunks:     make(map[string]string),
	}
	f.Format = somxFormatV2
	for i, l := range m.Layers {
		sl := somxLayerV2{Name: l.Name, Op: l.Op, Inputs: l.Inputs, Attrs: l.Attrs}
		if len(l.Params) > 0 {
			sl.Params = make(map[string]somxTensorV2, len(l.Params))
			for name, p := range l.Params {
				refs := chunk.Split(p.Data(), 0, func(h string, data []byte) {
					if _, ok := f.Chunks[h]; !ok {
						f.Chunks[h] = base64.StdEncoding.EncodeToString(data)
					}
				})
				sl.Params[name] = somxTensorV2{Shape: p.Shape(), Chunks: refs}
			}
		}
		f.Layers[i] = sl
	}
	return json.NewEncoder(w).Encode(&f)
}

// EncodeV1 writes the model in legacy SOMX v1 (tensors inlined as flat
// float arrays). Kept so older readers stay testable and fixtures can be
// regenerated.
func EncodeV1(w io.Writer, m *Model) error {
	f := somxFileV1{
		somxHeader: headerOf(m),
		Layers:     make([]somxLayerV1, len(m.Layers)),
	}
	f.Format = somxFormatV1
	for i, l := range m.Layers {
		sl := somxLayerV1{Name: l.Name, Op: l.Op, Inputs: l.Inputs, Attrs: l.Attrs}
		if len(l.Params) > 0 {
			sl.Params = make(map[string]somxTensor, len(l.Params))
			for name, p := range l.Params {
				sl.Params[name] = somxTensor{Shape: p.Shape(), Data: p.Data()}
			}
		}
		f.Layers[i] = sl
	}
	return json.NewEncoder(w).Encode(&f)
}

// Decode reads a SOMX model from r, accepting both v1 (inline tensors)
// and v2 (chunked), and validates it.
func Decode(r io.Reader) (*Model, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading SOMX: %w", err)
	}
	var probe struct {
		Format int `json:"format"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return nil, fmt.Errorf("graph: decoding SOMX: %w", err)
	}
	var m *Model
	switch probe.Format {
	case somxFormatV1:
		m, err = decodeV1(raw)
	case somxFormatV2:
		m, err = decodeV2(raw)
	default:
		return nil, fmt.Errorf("graph: unsupported SOMX format %d", probe.Format)
	}
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decoded model invalid: %w", err)
	}
	return m, nil
}

func decodeV1(raw []byte) (*Model, error) {
	var f somxFileV1
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("graph: decoding SOMX v1: %w", err)
	}
	m := modelOf(f.somxHeader, len(f.Layers))
	for i, sl := range f.Layers {
		l := &Layer{Name: sl.Name, Op: sl.Op, Inputs: sl.Inputs, Attrs: sl.Attrs}
		if len(sl.Params) > 0 {
			l.Params = make(map[string]*tensor.Tensor, len(sl.Params))
			for name, st := range sl.Params {
				if tensor.Shape(st.Shape).NumElements() != len(st.Data) {
					return nil, fmt.Errorf("graph: layer %q param %q: %d values for shape %v",
						sl.Name, name, len(st.Data), st.Shape)
				}
				l.Params[name] = tensor.FromSlice(st.Data, st.Shape...)
			}
		}
		m.Layers[i] = l
	}
	return m, nil
}

func decodeV2(raw []byte) (*Model, error) {
	var f somxFileV2
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("graph: decoding SOMX v2: %w", err)
	}
	// Decode and verify the chunk table once; tensors then assemble by
	// reference. A chunk whose bytes don't hash to its address is
	// corruption, caught here rather than surfacing as wrong weights.
	table := make(map[string][]byte, len(f.Chunks))
	for h, b64 := range f.Chunks {
		data, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("graph: SOMX chunk %q: %w", h, err)
		}
		if got := chunk.Hash(data); got != h {
			return nil, fmt.Errorf("graph: SOMX chunk %q: content hashes to %q", h, got)
		}
		table[h] = data
	}
	m := modelOf(f.somxHeader, len(f.Layers))
	for i, sl := range f.Layers {
		l := &Layer{Name: sl.Name, Op: sl.Op, Inputs: sl.Inputs, Attrs: sl.Attrs}
		if len(sl.Params) > 0 {
			l.Params = make(map[string]*tensor.Tensor, len(sl.Params))
			for name, st := range sl.Params {
				datas := make([][]byte, len(st.Chunks))
				for j, h := range st.Chunks {
					data, ok := table[h]
					if !ok {
						return nil, fmt.Errorf("graph: layer %q param %q references chunk %q absent from file table",
							sl.Name, name, h)
					}
					datas[j] = data
				}
				vals, err := chunk.Join(datas, tensor.Shape(st.Shape).NumElements())
				if err != nil {
					return nil, fmt.Errorf("graph: layer %q param %q: %w", sl.Name, name, err)
				}
				l.Params[name] = tensor.FromSlice(vals, st.Shape...)
			}
		}
		m.Layers[i] = l
	}
	return m, nil
}
