package graph

import (
	"encoding/json"
	"fmt"
	"io"

	"sommelier/internal/tensor"
)

// The SOMX wire format is the reproduction's stand-in for ONNX: a JSON
// envelope describing the DAG with parameter tensors inlined as flat
// arrays. Real Sommelier imports/exports ONNX through a Python shim; here
// the format is native so the whole pipeline stays in Go.

const somxFormatVersion = 1

type somxFile struct {
	Format       int               `json:"format"`
	Name         string            `json:"name"`
	Version      string            `json:"version"`
	Task         TaskKind          `json:"task"`
	InputShape   []int             `json:"input_shape"`
	Preprocessor string            `json:"preprocessor,omitempty"`
	OutputLabels []string          `json:"output_labels,omitempty"`
	Metadata     map[string]string `json:"metadata,omitempty"`
	Layers       []somxLayer       `json:"layers"`
}

type somxLayer struct {
	Name   string                `json:"name"`
	Op     OpKind                `json:"op"`
	Inputs []string              `json:"inputs,omitempty"`
	Attrs  Attrs                 `json:"attrs"`
	Params map[string]somxTensor `json:"params,omitempty"`
}

type somxTensor struct {
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// Encode writes the model to w in SOMX format.
func Encode(w io.Writer, m *Model) error {
	f := somxFile{
		Format:       somxFormatVersion,
		Name:         m.Name,
		Version:      m.Version,
		Task:         m.Task,
		InputShape:   m.InputShape,
		Preprocessor: m.Preprocessor,
		OutputLabels: m.OutputLabels,
		Metadata:     m.Metadata,
		Layers:       make([]somxLayer, len(m.Layers)),
	}
	for i, l := range m.Layers {
		sl := somxLayer{Name: l.Name, Op: l.Op, Inputs: l.Inputs, Attrs: l.Attrs}
		if len(l.Params) > 0 {
			sl.Params = make(map[string]somxTensor, len(l.Params))
			for name, p := range l.Params {
				sl.Params[name] = somxTensor{Shape: p.Shape(), Data: p.Data()}
			}
		}
		f.Layers[i] = sl
	}
	return json.NewEncoder(w).Encode(&f)
}

// Decode reads a SOMX model from r and validates it.
func Decode(r io.Reader) (*Model, error) {
	var f somxFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("graph: decoding SOMX: %w", err)
	}
	if f.Format != somxFormatVersion {
		return nil, fmt.Errorf("graph: unsupported SOMX format %d", f.Format)
	}
	m := &Model{
		Name:         f.Name,
		Version:      f.Version,
		Task:         f.Task,
		InputShape:   f.InputShape,
		Preprocessor: f.Preprocessor,
		OutputLabels: f.OutputLabels,
		Metadata:     f.Metadata,
		Layers:       make([]*Layer, len(f.Layers)),
	}
	for i, sl := range f.Layers {
		l := &Layer{Name: sl.Name, Op: sl.Op, Inputs: sl.Inputs, Attrs: sl.Attrs}
		if len(sl.Params) > 0 {
			l.Params = make(map[string]*tensor.Tensor, len(sl.Params))
			for name, st := range sl.Params {
				if tensor.Shape(st.Shape).NumElements() != len(st.Data) {
					return nil, fmt.Errorf("graph: layer %q param %q: %d values for shape %v",
						sl.Name, name, len(st.Data), st.Shape)
				}
				l.Params[name] = tensor.FromSlice(st.Data, st.Shape...)
			}
		}
		m.Layers[i] = l
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graph: decoded model invalid: %w", err)
	}
	return m, nil
}
