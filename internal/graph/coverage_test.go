package graph

import (
	"testing"

	"sommelier/internal/tensor"
)

// Tests for the less-travelled builder and spec paths.

func TestBuilderFullOperatorSurface(t *testing.T) {
	b := NewBuilder("surface", TaskClassification, tensor.Shape{3, 8, 8}, tensor.NewRNG(1))
	b.Conv(4, 3, 1, 1)
	b.BatchNorm()
	b.ReLU()
	b.MaxPool(2, 2)
	b.GlobalAvgPool()
	b.Dense(8)
	b.Sigmoid()
	b.LayerNorm()
	b.Dense(3)
	b.Softmax()
	b.Labels([]string{"a", "b", "c"})
	b.Meta("origin", "coverage")
	b.Preprocessor("resize8")
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	if b.Last() == "" {
		t.Fatal("Last empty")
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Preprocessor != "resize8" || m.Metadata["origin"] != "coverage" {
		t.Fatalf("builder metadata lost: %+v", m)
	}
	if m.InputLayer() == nil || m.InputLayer().Op != OpInput {
		t.Fatal("InputLayer lookup failed")
	}
	names := m.Layers[1].ParamNames()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("ParamNames not sorted: %v", names)
		}
	}
}

func TestBuilderErrAccessors(t *testing.T) {
	b := NewBuilder("bad", TaskRegression, tensor.Shape{2, 2, 2}, nil)
	b.Dense(4) // invalid on rank-3
	if b.Err() == nil {
		t.Fatal("Err should report the failure")
	}
	// Further calls are no-ops after an error.
	before := b.Last()
	b.ReLU()
	if b.Last() != before {
		t.Fatal("builder advanced after error")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("Build should fail")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("p", TaskRegression, tensor.Shape{2, 2, 2}, nil)
	b.Dense(4)
	b.MustBuild()
}

func TestParamSpecsErrors(t *testing.T) {
	cases := []struct {
		kind  OpKind
		attrs Attrs
		in    []tensor.Shape
	}{
		{OpDense, Attrs{Units: 4}, []tensor.Shape{{2, 2}}},
		{OpDense, Attrs{}, []tensor.Shape{{4}}},
		{OpConv2D, Attrs{}, []tensor.Shape{{3, 4, 4}}},
		{OpConv2D, Attrs{OutChannels: 2, KernelH: 3, KernelW: 3}, []tensor.Shape{{4}}},
		{OpEmbedding, Attrs{}, []tensor.Shape{{4}}},
		{OpBatchNorm, Attrs{}, nil},
		{OpLayerNorm, Attrs{}, nil},
	}
	for _, c := range cases {
		if _, err := ParamSpecs(c.kind, c.attrs, c.in); err == nil {
			t.Errorf("ParamSpecs(%s, %+v, %v) should fail", c.kind, c.attrs, c.in)
		}
	}
	// No-parameter ops return nil specs without error.
	specs, err := ParamSpecs(OpReLU, Attrs{}, []tensor.Shape{{4}})
	if err != nil || specs != nil {
		t.Fatalf("ReLU specs = %v, %v", specs, err)
	}
}

func TestParamSpecsEmbeddingAndNorms(t *testing.T) {
	specs, err := ParamSpecs(OpEmbedding, Attrs{VocabSize: 10, EmbedDim: 4}, []tensor.Shape{{6}})
	if err != nil || len(specs) != 1 || !specs[0].Shape.Equal(tensor.Shape{10, 4}) {
		t.Fatalf("embedding specs = %+v, %v", specs, err)
	}
	specs, err = ParamSpecs(OpBatchNorm, Attrs{}, []tensor.Shape{{5, 2, 2}})
	if err != nil || len(specs) != 4 || !specs[0].Shape.Equal(tensor.Shape{5}) {
		t.Fatalf("batchnorm specs = %+v, %v", specs, err)
	}
	specs, err = ParamSpecs(OpLayerNorm, Attrs{}, []tensor.Shape{{2, 3}})
	if err != nil || len(specs) != 2 || !specs[0].Shape.Equal(tensor.Shape{6}) {
		t.Fatalf("layernorm specs = %+v, %v", specs, err)
	}
}

func TestInferShapeErrorPaths(t *testing.T) {
	cases := []struct {
		kind  OpKind
		attrs Attrs
		in    []tensor.Shape
	}{
		{OpInput, Attrs{}, []tensor.Shape{{2}}},
		{OpInput, Attrs{}, nil},
		{OpReLU, Attrs{}, []tensor.Shape{{2}, {2}}},
		{OpEmbedding, Attrs{EmbedDim: 4}, []tensor.Shape{{2, 2}}},
		{OpMaxPool, Attrs{KernelH: 2, KernelW: 2}, []tensor.Shape{{4}}},
		{OpMaxPool, Attrs{}, []tensor.Shape{{1, 4, 4}}},
		{OpMaxPool, Attrs{KernelH: 9, KernelW: 9, Stride: 1}, []tensor.Shape{{1, 4, 4}}},
		{OpGlobalAvgPool, Attrs{}, []tensor.Shape{{4}}},
		{OpAdd, Attrs{}, []tensor.Shape{{4}}},
		{OpConcat, Attrs{}, []tensor.Shape{{4}}},
		{OpConcat, Attrs{}, []tensor.Shape{{2, 2}, {4}}},
		{OpFlatten, Attrs{}, nil},
		{OpConv2D, Attrs{OutChannels: 2, KernelH: 3, KernelW: 3, InChannels: 5}, []tensor.Shape{{3, 8, 8}}},
		{"Bogus", Attrs{}, []tensor.Shape{{2}}},
	}
	for _, c := range cases {
		if _, err := InferShape(c.kind, c.attrs, c.in); err == nil {
			t.Errorf("InferShape(%s, %+v, %v) should fail", c.kind, c.attrs, c.in)
		}
	}
}

func TestInferShapeEmbeddingAndMeanPool(t *testing.T) {
	out, err := InferShape(OpEmbedding, Attrs{VocabSize: 9, EmbedDim: 3}, []tensor.Shape{{5}})
	if err != nil || !out.Equal(tensor.Shape{5, 3}) {
		t.Fatalf("embedding shape = %v, %v", out, err)
	}
	out, err = InferShape(OpMeanPool, Attrs{KernelH: 2, KernelW: 2}, []tensor.Shape{{2, 4, 4}})
	if err != nil || !out.Equal(tensor.Shape{2, 2, 2}) {
		t.Fatalf("meanpool shape = %v, %v", out, err)
	}
}

func TestOpKindValid(t *testing.T) {
	if !OpConcat.Valid() || !OpEmbedding.Valid() {
		t.Fatal("known op reported invalid")
	}
	if OpKind("RNN").Valid() {
		t.Fatal("unknown op reported valid")
	}
}

func TestShapeStringAndValid(t *testing.T) {
	s := tensor.Shape{3, 4}
	if s.String() != "(3,4)" {
		t.Fatalf("String = %q", s.String())
	}
	if (tensor.Shape{0, 2}).Valid() {
		t.Fatal("zero dim reported valid")
	}
}
