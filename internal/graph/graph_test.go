package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sommelier/internal/tensor"
)

func smallMLP(t testing.TB) *Model {
	t.Helper()
	b := NewBuilder("mlp", TaskClassification, tensor.Shape{8}, tensor.NewRNG(1))
	b.Dense(16)
	b.ReLU()
	b.Dense(4)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatalf("building MLP: %v", err)
	}
	return m
}

func smallCNN(t testing.TB) *Model {
	t.Helper()
	b := NewBuilder("cnn", TaskClassification, tensor.Shape{3, 8, 8}, tensor.NewRNG(2))
	b.Conv(4, 3, 1, 1)
	b.ReLU()
	b.MaxPool(2, 2)
	b.Flatten()
	b.Dense(5)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatalf("building CNN: %v", err)
	}
	return m
}

func TestInferShapeDense(t *testing.T) {
	out, err := InferShape(OpDense, Attrs{Units: 10}, []tensor.Shape{{4}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{10}) {
		t.Fatalf("Dense shape = %v", out)
	}
	if _, err := InferShape(OpDense, Attrs{Units: 10}, []tensor.Shape{{2, 2}}); err == nil {
		t.Fatal("Dense should reject rank-2 input")
	}
	if _, err := InferShape(OpDense, Attrs{}, []tensor.Shape{{4}}); err == nil {
		t.Fatal("Dense should reject zero Units")
	}
}

func TestInferShapeConv(t *testing.T) {
	out, err := InferShape(OpConv2D, Attrs{OutChannels: 8, KernelH: 3, KernelW: 3, Stride: 1, Pad: 1},
		[]tensor.Shape{{3, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{8, 16, 16}) {
		t.Fatalf("Conv shape = %v", out)
	}
	out, err = InferShape(OpConv2D, Attrs{OutChannels: 8, KernelH: 3, KernelW: 3, Stride: 2},
		[]tensor.Shape{{3, 17, 17}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{8, 8, 8}) {
		t.Fatalf("strided Conv shape = %v", out)
	}
	if _, err := InferShape(OpConv2D, Attrs{OutChannels: 8, KernelH: 9, KernelW: 9},
		[]tensor.Shape{{3, 4, 4}}); err == nil {
		t.Fatal("Conv with kernel larger than input should fail")
	}
}

func TestInferShapePoolAndFlatten(t *testing.T) {
	out, err := InferShape(OpMaxPool, Attrs{KernelH: 2, KernelW: 2}, []tensor.Shape{{4, 8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{4, 4, 4}) {
		t.Fatalf("MaxPool shape = %v", out)
	}
	out, err = InferShape(OpFlatten, Attrs{}, []tensor.Shape{{4, 4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{64}) {
		t.Fatalf("Flatten shape = %v", out)
	}
}

func TestInferShapeMultiSource(t *testing.T) {
	out, err := InferShape(OpAdd, Attrs{}, []tensor.Shape{{8}, {8}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{8}) {
		t.Fatalf("Add shape = %v", out)
	}
	if _, err := InferShape(OpAdd, Attrs{}, []tensor.Shape{{8}, {9}}); err == nil {
		t.Fatal("Add should reject mismatched shapes")
	}
	out, err = InferShape(OpConcat, Attrs{}, []tensor.Shape{{3, 4}, {5, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{8, 4}) {
		t.Fatalf("Concat shape = %v", out)
	}
	if _, err := InferShape(OpConcat, Attrs{}, []tensor.Shape{{3, 4}, {5, 6}}); err == nil {
		t.Fatal("Concat should reject mismatched trailing dims")
	}
}

func TestOpClass(t *testing.T) {
	cases := map[OpKind]OpClass{
		OpDense:    ClassLinear,
		OpConv2D:   ClassLinear,
		OpReLU:     ClassNonLinear,
		OpMaxPool:  ClassNonLinear,
		OpAdd:      ClassMultiSource,
		OpConcat:   ClassMultiSource,
		OpFlatten:  ClassStructural,
		OpIdentity: ClassStructural,
	}
	for op, want := range cases {
		if got := op.Class(); got != want {
			t.Errorf("Class(%s) = %v, want %v", op, got, want)
		}
	}
}

func TestBuilderMLPValidates(t *testing.T) {
	m := smallMLP(t)
	if m.ParamCount() != 16*8+16+4*16+4 {
		t.Fatalf("ParamCount = %d", m.ParamCount())
	}
	out, err := m.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{4}) {
		t.Fatalf("OutputShape = %v", out)
	}
}

func TestBuilderCNNValidates(t *testing.T) {
	m := smallCNN(t)
	out, err := m.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{5}) {
		t.Fatalf("OutputShape = %v", out)
	}
}

func TestBuilderResidualPreservesShape(t *testing.T) {
	b := NewBuilder("res", TaskClassification, tensor.Shape{8}, tensor.NewRNG(3))
	b.Dense(8)
	b.Residual(func(b *Builder) {
		b.Dense(8)
		b.ReLU()
		b.Dense(8)
	})
	b.Dense(3)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The Add layer must have two inputs.
	var addLayer *Layer
	for _, l := range m.Layers {
		if l.Op == OpAdd {
			addLayer = l
		}
	}
	if addLayer == nil || len(addLayer.Inputs) != 2 {
		t.Fatalf("residual Add layer missing or malformed: %+v", addLayer)
	}
}

func TestBuilderErrorPropagates(t *testing.T) {
	b := NewBuilder("bad", TaskRegression, tensor.Shape{3, 8, 8}, nil)
	b.Dense(4) // Dense on rank-3 input is invalid
	if _, err := b.Build(); err == nil {
		t.Fatal("expected build error for Dense on rank-3 input")
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	m := &Model{
		Name:       "cyclic",
		InputShape: tensor.Shape{2},
		Layers: []*Layer{
			{Name: "input", Op: OpInput},
			{Name: "a", Op: OpIdentity, Inputs: []string{"b"}},
			{Name: "b", Op: OpIdentity, Inputs: []string{"a"}},
		},
	}
	if _, err := m.TopoSort(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("TopoSort err = %v, want cycle error", err)
	}
}

func TestTopoSortUnknownInput(t *testing.T) {
	m := &Model{
		Name:       "dangling",
		InputShape: tensor.Shape{2},
		Layers: []*Layer{
			{Name: "input", Op: OpInput},
			{Name: "a", Op: OpIdentity, Inputs: []string{"ghost"}},
		},
	}
	if _, err := m.TopoSort(); err == nil {
		t.Fatal("expected unknown-input error")
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	m := smallMLP(t)
	m.Layers = append(m.Layers, m.Layers[1].Clone())
	if err := m.Validate(); err == nil {
		t.Fatal("expected duplicate-name error")
	}
}

func TestValidateRejectsMissingParam(t *testing.T) {
	m := smallMLP(t)
	for _, l := range m.Layers {
		if l.Op == OpDense {
			delete(l.Params, "B")
			break
		}
	}
	if err := m.Validate(); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestValidateRejectsLabelCountMismatch(t *testing.T) {
	m := smallMLP(t)
	m.OutputLabels = []string{"a", "b"} // output has 4 dims
	if err := m.Validate(); err == nil {
		t.Fatal("expected label-count error")
	}
}

func TestOutputLayerNameMultipleSinks(t *testing.T) {
	b := NewBuilder("fork", TaskRegression, tensor.Shape{4}, nil)
	d := b.Dense(4)
	b.Add(OpReLU, Attrs{}, d)
	b.Add(OpTanh, Attrs{}, d) // second sink
	if _, err := b.model.OutputLayerName(); err == nil {
		t.Fatal("expected multiple-sink error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := smallMLP(t)
	c := m.Clone()
	var dense *Layer
	for _, l := range c.Layers {
		if l.Op == OpDense {
			dense = l
			break
		}
	}
	dense.Params["W"].Data()[0] += 100
	var orig *Layer
	for _, l := range m.Layers {
		if l.Op == OpDense {
			orig = l
			break
		}
	}
	if orig.Params["W"].Data()[0] == dense.Params["W"].Data()[0] {
		t.Fatal("Clone shares parameter storage")
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	m := smallMLP(t)
	f1 := m.Fingerprint()
	f2 := m.Clone().Fingerprint()
	if f1 != f2 {
		t.Fatal("fingerprint of identical clone differs")
	}
	c := m.Clone()
	for _, l := range c.Layers {
		if l.Op == OpDense {
			l.Params["W"].Data()[0] += 1
			break
		}
	}
	if c.Fingerprint() == f1 {
		t.Fatal("fingerprint insensitive to weight change")
	}
	c2 := m.Clone()
	c2.Layers[2].Op = OpTanh
	if c2.Fingerprint() == f1 {
		t.Fatal("fingerprint insensitive to operator change")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range []*Model{smallMLP(t), smallCNN(t)} {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("encode %s: %v", m.Name, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode %s: %v", m.Name, err)
		}
		if got.Fingerprint() != m.Fingerprint() {
			t.Fatalf("round-trip fingerprint mismatch for %s", m.Name)
		}
		if got.Name != m.Name || got.Task != m.Task {
			t.Fatalf("round-trip metadata mismatch: %+v", got)
		}
	}
}

func TestDecodeRejectsCorruptParam(t *testing.T) {
	m := smallMLP(t)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(buf.String(), `"shape":[16,8]`, `"shape":[16,9]`, 1)
	if _, err := Decode(strings.NewReader(s)); err == nil {
		t.Fatal("expected decode error for corrupted shape")
	}
}

func TestDecodeRejectsWrongFormat(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"format":99}`)); err == nil {
		t.Fatal("expected format-version error")
	}
}

// Property: topological order always places a layer after its inputs.
func TestPropertyTopoOrderRespectsDeps(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		b := NewBuilder("p", TaskRegression, tensor.Shape{6}, rng)
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				b.Dense(4 + rng.Intn(8))
			case 1:
				b.ReLU()
			default:
				b.Residual(func(b *Builder) { b.Dense(b.ShapeOfLast()[0]) })
			}
		}
		m, err := b.Build()
		if err != nil {
			return false
		}
		order, err := m.TopoSort()
		if err != nil {
			return false
		}
		pos := make(map[string]int, len(order))
		for i, l := range order {
			pos[l.Name] = i
		}
		for _, l := range order {
			for _, in := range l.Inputs {
				if pos[in] >= pos[l.Name] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: serialization round-trips preserve the fingerprint.
func TestPropertySerializationRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		b := NewBuilder("p", TaskClassification, tensor.Shape{5}, rng)
		b.Dense(3 + rng.Intn(5))
		b.Tanh()
		b.Dense(3)
		b.Softmax()
		m, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return got.Fingerprint() == m.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
