package graph

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sommelier/internal/tensor"
)

func TestDecodeV1BackCompat(t *testing.T) {
	m := smallMLP(t)
	var buf bytes.Buffer
	if err := EncodeV1(&buf, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"format":1`) {
		t.Fatal("EncodeV1 did not stamp format 1")
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decoding legacy v1: %v", err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("v1 round-trip changed the model")
	}
}

func TestEncodeEmitsV2WithChunkTable(t *testing.T) {
	m := smallMLP(t)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	var f struct {
		Format int               `json:"format"`
		Chunks map[string]string `json:"chunks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.Format != somxFormatV2 {
		t.Fatalf("format = %d, want %d", f.Format, somxFormatV2)
	}
	if len(f.Chunks) == 0 {
		t.Fatal("v2 file has an empty chunk table")
	}
}

func TestEncodeV2DedupsIdenticalTensors(t *testing.T) {
	// Two layers whose weight tensors are bit-identical must share chunk
	// table entries.
	w := tensor.FromSlice(make([]float64, 64), 8, 8)
	for i, d := 0, w.Data(); i < len(d); i++ {
		d[i] = float64(i) * 0.125
	}
	m := &Model{
		Name: "dup", Version: "1", Task: TaskRegression, InputShape: tensor.Shape{8},
		Layers: []*Layer{
			{Name: "input", Op: OpInput},
			{Name: "a", Op: OpDense, Inputs: []string{"input"}, Attrs: Attrs{Units: 8},
				Params: map[string]*tensor.Tensor{"W": w.Clone(), "B": tensor.New(8)}},
			{Name: "b", Op: OpDense, Inputs: []string{"a"}, Attrs: Attrs{Units: 8},
				Params: map[string]*tensor.Tensor{"W": w.Clone(), "B": tensor.New(8)}},
		},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	var f somxFileV2
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	wa, wb := f.Layers[1].Params["W"], f.Layers[2].Params["W"]
	if len(wa.Chunks) == 0 || wa.Chunks[0] != wb.Chunks[0] {
		t.Fatal("identical tensors did not share a chunk address")
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatal("deduped file round-trip changed the model")
	}
}

func TestDecodeV2RejectsTamperedChunk(t *testing.T) {
	m := smallMLP(t)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	var f somxFileV2
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	for h := range f.Chunks {
		f.Chunks[h] = "AAAAAAAAAAA=" // valid base64, wrong content
		break
	}
	tampered, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(tampered)); err == nil {
		t.Fatal("tampered chunk table accepted")
	}
}

func TestDecodeV2RejectsDanglingChunkRef(t *testing.T) {
	m := smallMLP(t)
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	var f somxFileV2
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	f.Chunks = map[string]string{} // drop the table, keep the refs
	truncated, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(truncated)); err == nil {
		t.Fatal("dangling chunk references accepted")
	}
}
