package graph

import (
	"fmt"

	"sommelier/internal/tensor"
)

// This file implements model surgery: carving a stored model's prefix
// out as a standalone network. §2 of the paper lists "certain model
// segments (e.g., visual feature extractors)" as a primary reuse unit —
// a designer loads a trunk, not a whole classifier.

// ExtractPrefix returns a new model consisting of every layer the named
// cut layer depends on (inclusive): the feature extractor ending at
// `cut`. Parameters are deep-copied. The result is a valid standalone
// model whose output is the cut layer's activation; its task is set to
// regression since the prefix emits features, not class scores.
func ExtractPrefix(m *Model, cut string) (*Model, error) {
	target := m.Layer(cut)
	if target == nil {
		return nil, fmt.Errorf("graph: model %q has no layer %q", m.Name, cut)
	}
	order, err := m.TopoSort()
	if err != nil {
		return nil, err
	}
	// Collect the dependency closure of the cut layer.
	keep := map[string]bool{cut: true}
	// Walk the topological order backwards, marking inputs of kept
	// layers; a reverse pass over a topo order reaches every ancestor.
	for i := len(order) - 1; i >= 0; i-- {
		l := order[i]
		if !keep[l.Name] {
			continue
		}
		for _, in := range l.Inputs {
			keep[in] = true
		}
	}
	out := &Model{
		Name:         m.Name + "/upto-" + cut,
		Version:      m.Version,
		Task:         TaskRegression,
		InputShape:   m.InputShape.Clone(),
		Preprocessor: m.Preprocessor,
	}
	for _, l := range order {
		if keep[l.Name] {
			out.Layers = append(out.Layers, l.Clone())
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("graph: extracted prefix invalid: %w", err)
	}
	return out, nil
}

// AttachHead appends a freshly initialized Dense(+Softmax) classifier
// head to a feature extractor, producing a trainable downstream model —
// the other half of the §2 transfer workflow. The extractor's output
// must be rank-1 (append a Flatten first otherwise); init may be nil for
// zero-initialized head weights.
func AttachHead(extractor *Model, name string, classes int, labels []string, init func(*Layer)) (*Model, error) {
	if classes <= 0 {
		return nil, fmt.Errorf("graph: head needs positive class count")
	}
	outName, err := extractor.OutputLayerName()
	if err != nil {
		return nil, err
	}
	shapes, err := extractor.ShapeOf()
	if err != nil {
		return nil, err
	}
	outShape := shapes[outName]
	m := extractor.Clone()
	m.Name = name
	m.Task = TaskClassification
	m.OutputLabels = append([]string(nil), labels...)

	prev := outName
	if outShape.Rank() != 1 {
		flat := &Layer{Name: "head_flatten", Op: OpFlatten, Inputs: []string{prev}}
		m.Layers = append(m.Layers, flat)
		prev = flat.Name
		outShape = tensor.Shape{outShape.NumElements()}
	}
	dense := &Layer{
		Name: "head_dense", Op: OpDense, Inputs: []string{prev},
		Attrs: Attrs{Units: classes},
	}
	specs, err := ParamSpecs(OpDense, dense.Attrs, []tensor.Shape{outShape})
	if err != nil {
		return nil, err
	}
	dense.Params = make(map[string]*tensor.Tensor, len(specs))
	for _, spec := range specs {
		dense.Params[spec.Name] = tensor.New(spec.Shape...)
	}
	if init != nil {
		init(dense)
	}
	m.Layers = append(m.Layers, dense)
	m.Layers = append(m.Layers, &Layer{
		Name: "head_softmax", Op: OpSoftmax, Inputs: []string{"head_dense"},
	})
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graph: head attachment invalid: %w", err)
	}
	return m, nil
}

// FrozenTrunk returns the set of layer names belonging to the extractor
// part of a model produced by AttachHead — the map to hand to
// train.Config.Frozen for head-only fine-tuning.
func FrozenTrunk(m *Model) map[string]bool {
	out := make(map[string]bool)
	for _, l := range m.Layers {
		switch l.Name {
		case "head_flatten", "head_dense", "head_softmax":
		default:
			out[l.Name] = true
		}
	}
	return out
}
