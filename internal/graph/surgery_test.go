package graph

import (
	"testing"

	"sommelier/internal/tensor"
)

func residualModel(t testing.TB) *Model {
	t.Helper()
	b := NewBuilder("surgery", TaskClassification, tensor.Shape{8}, tensor.NewRNG(1))
	b.Dense(12)
	b.ReLU()
	b.Residual(func(b *Builder) {
		b.Dense(12)
		b.ReLU()
		b.Dense(12)
	})
	b.Dense(4)
	b.Softmax()
	return b.MustBuild()
}

func TestExtractPrefixSequential(t *testing.T) {
	m := residualModel(t)
	// Cut after the first activation: the extractor is input + Dense +
	// ReLU.
	fx, err := ExtractPrefix(m, "ReLU_2")
	if err != nil {
		t.Fatal(err)
	}
	if len(fx.Layers) != 3 {
		t.Fatalf("prefix has %d layers", len(fx.Layers))
	}
	if fx.Task != TaskRegression {
		t.Fatalf("prefix task %s", fx.Task)
	}
	out, err := fx.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{12}) {
		t.Fatalf("prefix output %v", out)
	}
}

func TestExtractPrefixCrossesBranches(t *testing.T) {
	m := residualModel(t)
	// Cut at the residual Add: the closure must include both the skip
	// path and the branch body.
	var addName string
	for _, l := range m.Layers {
		if l.Op == OpAdd {
			addName = l.Name
		}
	}
	fx, err := ExtractPrefix(m, addName)
	if err != nil {
		t.Fatal(err)
	}
	// Everything except the classifier head (Dense_6, Softmax_7).
	if len(fx.Layers) != len(m.Layers)-2 {
		t.Fatalf("prefix layers = %d, want %d", len(fx.Layers), len(m.Layers)-2)
	}
}

func TestExtractPrefixDeepCopies(t *testing.T) {
	m := residualModel(t)
	fx, err := ExtractPrefix(m, "Dense_1")
	if err != nil {
		t.Fatal(err)
	}
	fx.Layer("Dense_1").Params["W"].Data()[0] += 100
	if m.Layer("Dense_1").Params["W"].Data()[0] == fx.Layer("Dense_1").Params["W"].Data()[0] {
		t.Fatal("prefix shares parameter storage with the source")
	}
}

func TestExtractPrefixUnknownLayer(t *testing.T) {
	if _, err := ExtractPrefix(residualModel(t), "ghost"); err == nil {
		t.Fatal("expected unknown-layer error")
	}
}

func TestAttachHeadRank1(t *testing.T) {
	m := residualModel(t)
	fx, err := ExtractPrefix(m, "ReLU_2")
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	ds, err := AttachHead(fx, "downstream", 3, []string{"x", "y", "z"}, func(l *Layer) {
		rng.FillXavier(l.Params["W"])
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ds.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{3}) {
		t.Fatalf("head output %v", out)
	}
	if ds.Task != TaskClassification || len(ds.OutputLabels) != 3 {
		t.Fatalf("head task/labels: %s %v", ds.Task, ds.OutputLabels)
	}
	// Head weights must be initialized.
	if ds.Layer("head_dense").Params["W"].L2Norm() == 0 {
		t.Fatal("init callback not applied")
	}
	frozen := FrozenTrunk(ds)
	if frozen["head_dense"] || !frozen["Dense_1"] {
		t.Fatalf("FrozenTrunk wrong: %v", frozen)
	}
}

func TestAttachHeadFlattensRank3(t *testing.T) {
	b := NewBuilder("conv", TaskClassification, tensor.Shape{2, 4, 4}, tensor.NewRNG(2))
	b.Conv(3, 3, 1, 1)
	b.ReLU()
	b.Flatten()
	b.Dense(4)
	b.Softmax()
	m := b.MustBuild()
	fx, err := ExtractPrefix(m, "ReLU_2") // rank-3 output
	if err != nil {
		t.Fatal(err)
	}
	ds, err := AttachHead(fx, "ds", 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Layer("head_flatten") == nil {
		t.Fatal("rank-3 extractor output should get a flatten")
	}
	out, err := ds.OutputShape()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{2}) {
		t.Fatalf("output %v", out)
	}
}

func TestAttachHeadValidation(t *testing.T) {
	fx, err := ExtractPrefix(residualModel(t), "ReLU_2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachHead(fx, "x", 0, nil, nil); err == nil {
		t.Fatal("expected class-count error")
	}
}
