package graph

import (
	"fmt"

	"sommelier/internal/tensor"
)

// Builder assembles models incrementally, tracking shapes so parameter
// tensors can be allocated (and optionally initialized) as layers are
// added. The zoo uses it to synthesize whole model families.
type Builder struct {
	model  *Model
	shapes map[string]tensor.Shape
	last   string
	rng    *tensor.RNG
	err    error
	seq    int
}

// NewBuilder starts a model with the given name, task, and per-sample
// input shape. If rng is non-nil, parameters are Xavier-initialized as
// layers are added; otherwise they are zero.
func NewBuilder(name string, task TaskKind, inputShape tensor.Shape, rng *tensor.RNG) *Builder {
	b := &Builder{
		model: &Model{
			Name:       name,
			Version:    "1",
			Task:       task,
			InputShape: inputShape.Clone(),
		},
		shapes: make(map[string]tensor.Shape),
		rng:    rng,
	}
	b.addLayer(&Layer{Name: "input", Op: OpInput})
	return b
}

// Err returns the first error encountered while building, if any.
func (b *Builder) Err() error { return b.err }

// Last returns the name of the most recently added layer.
func (b *Builder) Last() string { return b.last }

// ShapeOfLast returns the output shape of the most recently added layer.
func (b *Builder) ShapeOfLast() tensor.Shape { return b.shapes[b.last] }

func (b *Builder) nextName(op OpKind) string {
	b.seq++
	return fmt.Sprintf("%s_%d", op, b.seq)
}

func (b *Builder) addLayer(l *Layer) string {
	if b.err != nil {
		return b.last
	}
	var out tensor.Shape
	if l.Op == OpInput {
		out = b.model.InputShape.Clone()
	} else {
		in := make([]tensor.Shape, len(l.Inputs))
		for i, name := range l.Inputs {
			s, ok := b.shapes[name]
			if !ok {
				b.err = fmt.Errorf("graph: builder: unknown input layer %q", name)
				return b.last
			}
			in[i] = s
		}
		var err error
		out, err = InferShape(l.Op, l.Attrs, in)
		if err != nil {
			b.err = fmt.Errorf("graph: builder: %w", err)
			return b.last
		}
		specs, err := ParamSpecs(l.Op, l.Attrs, in)
		if err != nil {
			b.err = fmt.Errorf("graph: builder: %w", err)
			return b.last
		}
		if len(specs) > 0 {
			l.Params = make(map[string]*tensor.Tensor, len(specs))
			for _, spec := range specs {
				p := tensor.New(spec.Shape...)
				b.initParam(l.Op, spec.Name, p)
				l.Params[spec.Name] = p
			}
		}
	}
	b.model.Layers = append(b.model.Layers, l)
	b.shapes[l.Name] = out
	b.last = l.Name
	return l.Name
}

func (b *Builder) initParam(op OpKind, name string, p *tensor.Tensor) {
	switch name {
	case "Gamma":
		p.Fill(1)
	case "Var":
		p.Fill(1)
	case "Beta", "Mean", "B":
		// zero
	default: // weight matrices
		if b.rng != nil {
			b.rng.FillXavier(p)
		}
	}
}

// Add appends a layer of the given kind fed by the named inputs (or the
// previous layer when none are given) and returns its name.
func (b *Builder) Add(op OpKind, attrs Attrs, inputs ...string) string {
	if len(inputs) == 0 {
		inputs = []string{b.last}
	}
	return b.addLayer(&Layer{Name: b.nextName(op), Op: op, Inputs: inputs, Attrs: attrs})
}

// Dense appends a fully-connected layer of the given width.
func (b *Builder) Dense(units int) string {
	return b.Add(OpDense, Attrs{Units: units})
}

// Conv appends a Conv2D layer.
func (b *Builder) Conv(outChannels, kernel, stride, pad int) string {
	return b.Add(OpConv2D, Attrs{
		OutChannels: outChannels, KernelH: kernel, KernelW: kernel,
		Stride: stride, Pad: pad,
	})
}

// ReLU appends a ReLU activation.
func (b *Builder) ReLU() string { return b.Add(OpReLU, Attrs{}) }

// Tanh appends a tanh activation.
func (b *Builder) Tanh() string { return b.Add(OpTanh, Attrs{}) }

// Sigmoid appends a sigmoid activation.
func (b *Builder) Sigmoid() string { return b.Add(OpSigmoid, Attrs{}) }

// Softmax appends a softmax layer.
func (b *Builder) Softmax() string { return b.Add(OpSoftmax, Attrs{}) }

// MaxPool appends a max-pooling layer with square kernel k and stride s.
func (b *Builder) MaxPool(k, s int) string {
	return b.Add(OpMaxPool, Attrs{KernelH: k, KernelW: k, Stride: s})
}

// BatchNorm appends a batch-normalization layer.
func (b *Builder) BatchNorm() string { return b.Add(OpBatchNorm, Attrs{Eps: 1e-5}) }

// LayerNorm appends a layer-normalization layer.
func (b *Builder) LayerNorm() string { return b.Add(OpLayerNorm, Attrs{Eps: 1e-5}) }

// Flatten appends a flatten layer.
func (b *Builder) Flatten() string { return b.Add(OpFlatten, Attrs{}) }

// GlobalAvgPool appends a global average pooling layer.
func (b *Builder) GlobalAvgPool() string { return b.Add(OpGlobalAvgPool, Attrs{}) }

// Residual wires a two-branch residual block: body(b) runs on a branch
// starting from the current layer, then the branch output is added back to
// the block input. The body must preserve the input shape (or the caller
// can add a projection inside the body).
func (b *Builder) Residual(body func(*Builder)) string {
	start := b.last
	body(b)
	end := b.last
	if b.err != nil {
		return b.last
	}
	return b.Add(OpAdd, Attrs{}, start, end)
}

// Labels sets the output syntax labels and marks the model classification.
func (b *Builder) Labels(labels []string) *Builder {
	b.model.OutputLabels = append([]string(nil), labels...)
	b.model.Task = TaskClassification
	return b
}

// Meta sets a metadata key.
func (b *Builder) Meta(key, value string) *Builder {
	if b.model.Metadata == nil {
		b.model.Metadata = make(map[string]string)
	}
	b.model.Metadata[key] = value
	return b
}

// Preprocessor records the model's registered input preprocessor name.
func (b *Builder) Preprocessor(name string) *Builder {
	b.model.Preprocessor = name
	return b
}

// Build validates and returns the finished model.
func (b *Builder) Build() (*Model, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.model.Validate(); err != nil {
		return nil, err
	}
	return b.model, nil
}

// MustBuild is Build for static model definitions; it panics on error.
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}
