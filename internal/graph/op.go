// Package graph defines the DNN model substrate for the Sommelier
// reproduction: models are directed acyclic graphs of typed layers, each
// carrying attributes (tensor shapes, hyper-parameters) and parameters
// (weight tensors), exactly the anatomy Figure 2 of the paper describes.
// The package is framework-agnostic by construction — internal/equiv,
// internal/resource and internal/index consume only this representation,
// mirroring how the paper's C++ engine consumes ONNX.
package graph

import (
	"fmt"

	"sommelier/internal/tensor"
)

// OpKind identifies the mathematical operator a layer performs.
type OpKind string

// Supported operator kinds. The equivalence analysis in internal/equiv
// classifies these into linear, non-linear, and multi-source combination
// operators per §4.2 of the paper.
const (
	OpInput         OpKind = "Input"
	OpDense         OpKind = "Dense"
	OpConv2D        OpKind = "Conv2D"
	OpEmbedding     OpKind = "Embedding"
	OpReLU          OpKind = "ReLU"
	OpLeakyReLU     OpKind = "LeakyReLU"
	OpTanh          OpKind = "Tanh"
	OpSigmoid       OpKind = "Sigmoid"
	OpSoftmax       OpKind = "Softmax"
	OpMaxPool       OpKind = "MaxPool"
	OpMeanPool      OpKind = "MeanPool"
	OpGlobalAvgPool OpKind = "GlobalAvgPool"
	OpBatchNorm     OpKind = "BatchNorm"
	OpLayerNorm     OpKind = "LayerNorm"
	OpAdd           OpKind = "Add"
	OpMul           OpKind = "Mul"
	OpConcat        OpKind = "Concat"
	OpFlatten       OpKind = "Flatten"
	OpDropout       OpKind = "Dropout"
	OpIdentity      OpKind = "Identity"
)

// OpClass groups operators by how errors propagate through them (§4.2).
type OpClass int

const (
	// ClassLinear covers operators whose kernel is a matrix multiply:
	// Dense, Conv2D, Embedding.
	ClassLinear OpClass = iota
	// ClassNonLinear covers activations, pooling, and normalization.
	ClassNonLinear
	// ClassMultiSource covers operators merging several inputs.
	ClassMultiSource
	// ClassStructural covers shape-only operators (Input, Flatten,
	// Identity, Dropout-at-inference) that pass values through.
	ClassStructural
)

// Class returns the error-propagation class of the operator.
func (k OpKind) Class() OpClass {
	switch k {
	case OpDense, OpConv2D, OpEmbedding:
		return ClassLinear
	case OpReLU, OpLeakyReLU, OpTanh, OpSigmoid, OpSoftmax,
		OpMaxPool, OpMeanPool, OpGlobalAvgPool, OpBatchNorm, OpLayerNorm:
		return ClassNonLinear
	case OpAdd, OpMul, OpConcat:
		return ClassMultiSource
	default:
		return ClassStructural
	}
}

// Valid reports whether k is a recognized operator kind.
func (k OpKind) Valid() bool {
	switch k {
	case OpInput, OpDense, OpConv2D, OpEmbedding, OpReLU, OpLeakyReLU,
		OpTanh, OpSigmoid, OpSoftmax, OpMaxPool, OpMeanPool,
		OpGlobalAvgPool, OpBatchNorm, OpLayerNorm, OpAdd, OpMul,
		OpConcat, OpFlatten, OpDropout, OpIdentity:
		return true
	}
	return false
}

// Attrs carries the per-layer hyper-parameters. Fields not meaningful for
// an operator are left at their zero values.
type Attrs struct {
	// Units is the output width of a Dense layer.
	Units int `json:"units,omitempty"`
	// InChannels/OutChannels describe Conv2D channel counts.
	InChannels  int `json:"in_channels,omitempty"`
	OutChannels int `json:"out_channels,omitempty"`
	// KernelH/KernelW/Stride/Pad parameterize Conv2D and pooling.
	KernelH int `json:"kernel_h,omitempty"`
	KernelW int `json:"kernel_w,omitempty"`
	Stride  int `json:"stride,omitempty"`
	Pad     int `json:"pad,omitempty"`
	// VocabSize/EmbedDim parameterize Embedding.
	VocabSize int `json:"vocab_size,omitempty"`
	EmbedDim  int `json:"embed_dim,omitempty"`
	// Alpha is the LeakyReLU negative slope.
	Alpha float64 `json:"alpha,omitempty"`
	// Rate is the Dropout rate (inference treats Dropout as identity).
	Rate float64 `json:"rate,omitempty"`
	// Eps is the normalization epsilon.
	Eps float64 `json:"eps,omitempty"`
}

// ParamSpec names a parameter tensor an operator requires and its shape
// given the layer attributes.
type ParamSpec struct {
	Name  string
	Shape tensor.Shape
}

// ParamSpecs returns the parameter tensors the operator requires. Input
// shapes are per-sample (no batch dimension).
func ParamSpecs(kind OpKind, attrs Attrs, in []tensor.Shape) ([]ParamSpec, error) {
	switch kind {
	case OpDense:
		if len(in) != 1 || in[0].Rank() != 1 {
			return nil, fmt.Errorf("graph: Dense needs one rank-1 input, got %v", in)
		}
		if attrs.Units <= 0 {
			return nil, fmt.Errorf("graph: Dense needs positive Units")
		}
		return []ParamSpec{
			{Name: "W", Shape: tensor.Shape{attrs.Units, in[0][0]}},
			{Name: "B", Shape: tensor.Shape{attrs.Units}},
		}, nil
	case OpConv2D:
		if len(in) != 1 || in[0].Rank() != 3 {
			return nil, fmt.Errorf("graph: Conv2D needs one rank-3 input, got %v", in)
		}
		if attrs.OutChannels <= 0 || attrs.KernelH <= 0 || attrs.KernelW <= 0 {
			return nil, fmt.Errorf("graph: Conv2D needs OutChannels and kernel dims")
		}
		inC := in[0][0]
		return []ParamSpec{
			{Name: "W", Shape: tensor.Shape{attrs.OutChannels, inC * attrs.KernelH * attrs.KernelW}},
			{Name: "B", Shape: tensor.Shape{attrs.OutChannels}},
		}, nil
	case OpEmbedding:
		if attrs.VocabSize <= 0 || attrs.EmbedDim <= 0 {
			return nil, fmt.Errorf("graph: Embedding needs VocabSize and EmbedDim")
		}
		return []ParamSpec{
			{Name: "W", Shape: tensor.Shape{attrs.VocabSize, attrs.EmbedDim}},
		}, nil
	case OpBatchNorm:
		if len(in) != 1 {
			return nil, fmt.Errorf("graph: BatchNorm needs one input")
		}
		c := in[0][0]
		s := tensor.Shape{c}
		return []ParamSpec{
			{Name: "Gamma", Shape: s}, {Name: "Beta", Shape: s},
			{Name: "Mean", Shape: s}, {Name: "Var", Shape: s},
		}, nil
	case OpLayerNorm:
		if len(in) != 1 {
			return nil, fmt.Errorf("graph: LayerNorm needs one input")
		}
		n := in[0].NumElements()
		s := tensor.Shape{n}
		return []ParamSpec{{Name: "Gamma", Shape: s}, {Name: "Beta", Shape: s}}, nil
	default:
		return nil, nil
	}
}

// InferShape computes the per-sample output shape of an operator given its
// input shapes and attributes. It returns an error when the combination is
// invalid — this is the type-check phase of the whole-model equivalence
// pipeline (§4.1).
func InferShape(kind OpKind, attrs Attrs, in []tensor.Shape) (tensor.Shape, error) {
	one := func() (tensor.Shape, error) {
		if len(in) != 1 {
			return nil, fmt.Errorf("graph: %s needs exactly one input, got %d", kind, len(in))
		}
		return in[0].Clone(), nil
	}
	switch kind {
	case OpInput:
		if len(in) != 0 {
			return nil, fmt.Errorf("graph: Input takes no inputs")
		}
		return nil, fmt.Errorf("graph: Input shape comes from the model spec")
	case OpDense:
		if len(in) != 1 || in[0].Rank() != 1 {
			return nil, fmt.Errorf("graph: Dense needs one rank-1 input, got %v", in)
		}
		if attrs.Units <= 0 {
			return nil, fmt.Errorf("graph: Dense needs positive Units")
		}
		return tensor.Shape{attrs.Units}, nil
	case OpConv2D:
		if len(in) != 1 || in[0].Rank() != 3 {
			return nil, fmt.Errorf("graph: Conv2D needs one rank-3 input, got %v", in)
		}
		if attrs.InChannels != 0 && attrs.InChannels != in[0][0] {
			return nil, fmt.Errorf("graph: Conv2D InChannels %d vs input %d", attrs.InChannels, in[0][0])
		}
		stride := attrs.Stride
		if stride == 0 {
			stride = 1
		}
		h := convOut(in[0][1], attrs.KernelH, attrs.Pad, stride)
		w := convOut(in[0][2], attrs.KernelW, attrs.Pad, stride)
		if h <= 0 || w <= 0 {
			return nil, fmt.Errorf("graph: Conv2D output %dx%d invalid for input %v", h, w, in[0])
		}
		return tensor.Shape{attrs.OutChannels, h, w}, nil
	case OpEmbedding:
		if len(in) != 1 || in[0].Rank() != 1 {
			return nil, fmt.Errorf("graph: Embedding needs one rank-1 input of token ids")
		}
		return tensor.Shape{in[0][0], attrs.EmbedDim}, nil
	case OpReLU, OpLeakyReLU, OpTanh, OpSigmoid, OpSoftmax, OpBatchNorm,
		OpLayerNorm, OpDropout, OpIdentity:
		return one()
	case OpMaxPool, OpMeanPool:
		if len(in) != 1 || in[0].Rank() != 3 {
			return nil, fmt.Errorf("graph: %s needs one rank-3 input, got %v", kind, in)
		}
		stride := attrs.Stride
		if stride == 0 {
			stride = attrs.KernelH
		}
		if attrs.KernelH <= 0 || attrs.KernelW <= 0 || stride <= 0 {
			return nil, fmt.Errorf("graph: %s needs positive kernel and stride", kind)
		}
		h := convOut(in[0][1], attrs.KernelH, 0, stride)
		w := convOut(in[0][2], attrs.KernelW, 0, stride)
		if h <= 0 || w <= 0 {
			return nil, fmt.Errorf("graph: %s output %dx%d invalid for input %v", kind, h, w, in[0])
		}
		return tensor.Shape{in[0][0], h, w}, nil
	case OpGlobalAvgPool:
		if len(in) != 1 || in[0].Rank() < 2 {
			return nil, fmt.Errorf("graph: GlobalAvgPool needs one input of rank >= 2")
		}
		return tensor.Shape{in[0][0]}, nil
	case OpAdd, OpMul:
		if len(in) < 2 {
			return nil, fmt.Errorf("graph: %s needs at least two inputs", kind)
		}
		for _, s := range in[1:] {
			if !s.Equal(in[0]) {
				return nil, fmt.Errorf("graph: %s input shapes differ: %v vs %v", kind, in[0], s)
			}
		}
		return in[0].Clone(), nil
	case OpConcat:
		if len(in) < 2 {
			return nil, fmt.Errorf("graph: Concat needs at least two inputs")
		}
		out := in[0].Clone()
		for _, s := range in[1:] {
			if s.Rank() != out.Rank() {
				return nil, fmt.Errorf("graph: Concat rank mismatch: %v vs %v", out, s)
			}
			for d := 1; d < s.Rank(); d++ {
				if s[d] != out[d] {
					return nil, fmt.Errorf("graph: Concat trailing dims differ: %v vs %v", out, s)
				}
			}
			out[0] += s[0]
		}
		return out, nil
	case OpFlatten:
		if len(in) != 1 {
			return nil, fmt.Errorf("graph: Flatten needs one input")
		}
		return tensor.Shape{in[0].NumElements()}, nil
	default:
		return nil, fmt.Errorf("graph: unknown operator %q", kind)
	}
}

func convOut(in, kernel, pad, stride int) int {
	return (in+2*pad-kernel)/stride + 1
}
