// Package chunk provides the low-level content-addressing primitives the
// storage stack is built on: fixed-size chunking of tensor data,
// SHA-256 addressing, bit-exact float64 (de)serialization, and the
// sparse delta codec that stores a fine-tuned tensor as edits against
// its base. The package sits below both internal/graph (SOMX-v2 files
// embed chunk tables) and internal/cas (the refcounted chunk store), so
// it depends on neither.
//
// Everything here is deterministic by construction: chunk boundaries
// are fixed offsets, hashes are content hashes, and encodings are
// little-endian byte-exact — the same tensor always yields the same
// chunk list, on any machine, at any concurrency.
package chunk

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
)

// DefaultSize is the chunk granularity in float64 elements (32 KiB of
// raw data). Small enough that a fine-tuned head does not drag a whole
// trunk chunk with it, large enough that hash and manifest overhead
// stay far below 1% of payload.
const DefaultSize = 4096

// HashLen is the length of a hex chunk address.
const HashLen = sha256.Size * 2

// Hash returns the hex SHA-256 address of a chunk's raw bytes.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ValidHash reports whether s is syntactically a chunk address.
func ValidHash(s string) bool {
	if len(s) != HashLen {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

// Bytes encodes float64 values as little-endian bytes, bit-exactly.
func Bytes(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// Floats decodes little-endian bytes back into float64 values. The
// byte length must be a multiple of 8.
func Floats(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("chunk: %d bytes is not a whole number of float64s", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// Split cuts raw tensor data into content-addressed chunks of at most
// size elements and returns the ordered chunk list. The callback
// receives each chunk's address and raw bytes exactly once per distinct
// offset (the caller decides whether it already holds the content).
// size <= 0 uses DefaultSize.
func Split(vals []float64, size int, emit func(hash string, data []byte)) []string {
	if size <= 0 {
		size = DefaultSize
	}
	n := (len(vals) + size - 1) / size
	if len(vals) == 0 {
		n = 1 // zero-element tensors still need one (empty) chunk
	}
	hashes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lo := i * size
		hi := lo + size
		if hi > len(vals) {
			hi = len(vals)
		}
		data := Bytes(vals[lo:hi])
		h := Hash(data)
		hashes = append(hashes, h)
		if emit != nil {
			emit(h, data)
		}
	}
	return hashes
}

// Join reassembles tensor data from ordered chunk contents, checking
// that the total element count matches want.
func Join(chunks [][]byte, want int) ([]float64, error) {
	out := make([]float64, 0, want)
	for i, data := range chunks {
		vals, err := Floats(data)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		out = append(out, vals...)
	}
	if len(out) != want {
		return nil, fmt.Errorf("chunk: reassembled %d elements, want %d", len(out), want)
	}
	return out, nil
}

// Delta is one sparse edit run against a base tensor: Count values
// replacing base[Index:Index+Count].
//
// The wire encoding of a delta is a sequence of (uint32 index, uint32
// count, count×float64 values) records, little-endian, in ascending
// index order — 8 bytes of framing per contiguous run, so clustered
// edits (a re-initialized head row, a patched filter) cost barely more
// than their raw values.
const deltaHeader = 8 // uint32 index + uint32 count

// EncodeDelta computes the sparse edit list that turns base into vals
// (same length) as raw bytes. The second result is false when the
// encoding is not worth it — the delta would be at least as large as
// storing vals densely — or when the lengths differ.
func EncodeDelta(base, vals []float64) ([]byte, bool) {
	if len(base) != len(vals) {
		return nil, false
	}
	dense := 8 * len(vals)
	var out []byte
	var hdr [deltaHeader]byte
	i := 0
	for i < len(vals) {
		if math.Float64bits(vals[i]) == math.Float64bits(base[i]) {
			i++
			continue
		}
		j := i
		for j < len(vals) && math.Float64bits(vals[j]) != math.Float64bits(base[j]) {
			j++
		}
		binary.LittleEndian.PutUint32(hdr[0:], uint32(i))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(j-i))
		out = append(out, hdr[:]...)
		out = append(out, Bytes(vals[i:j])...)
		if len(out) >= dense {
			return nil, false // delta lost; store densely
		}
		i = j
	}
	return out, true
}

// ApplyDelta replays a sparse edit list onto a copy of base.
func ApplyDelta(base []float64, delta []byte) ([]float64, error) {
	out := make([]float64, len(base))
	copy(out, base)
	for off := 0; off < len(delta); {
		if off+deltaHeader > len(delta) {
			return nil, fmt.Errorf("chunk: truncated delta header at offset %d", off)
		}
		idx := int(binary.LittleEndian.Uint32(delta[off:]))
		cnt := int(binary.LittleEndian.Uint32(delta[off+4:]))
		off += deltaHeader
		if cnt <= 0 || off+8*cnt > len(delta) {
			return nil, fmt.Errorf("chunk: truncated delta run at offset %d", off)
		}
		if idx < 0 || idx+cnt > len(out) {
			return nil, fmt.Errorf("chunk: delta run [%d,%d) outside tensor of %d elements", idx, idx+cnt, len(out))
		}
		vals, err := Floats(delta[off : off+8*cnt])
		if err != nil {
			return nil, err
		}
		copy(out[idx:], vals)
		off += 8 * cnt
	}
	return out, nil
}
