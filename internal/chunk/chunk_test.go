package chunk

import (
	"math"
	"testing"
)

func TestBytesFloatsRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -2.75, math.Pi, math.SmallestNonzeroFloat64, math.MaxFloat64, math.Inf(1)}
	got, err := Floats(Bytes(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			t.Fatalf("value %d: %v != %v", i, got[i], v)
		}
	}
	if _, err := Floats([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for ragged byte length")
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i) * 1.25
		}
		var datas [][]byte
		hashes := Split(vals, 8, func(h string, data []byte) {
			if h != Hash(data) {
				t.Fatalf("emit hash mismatch")
			}
			datas = append(datas, append([]byte(nil), data...))
		})
		if len(hashes) == 0 {
			t.Fatalf("n=%d: no chunks", n)
		}
		wantChunks := (n + 7) / 8
		if n == 0 {
			wantChunks = 1
		}
		if len(hashes) != wantChunks {
			t.Fatalf("n=%d: %d chunks, want %d", n, len(hashes), wantChunks)
		}
		got, err := Join(datas, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("n=%d: element %d differs", n, i)
			}
		}
	}
}

func TestSplitDeterministicAndContentAddressed(t *testing.T) {
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = float64(i)
	}
	a := Split(vals, 8, nil)
	b := Split(vals, 8, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same content produced different chunk lists")
		}
	}
	// Identical slices of content share addresses.
	c := Split(vals[:8], 8, nil)
	if c[0] != a[0] {
		t.Fatal("identical chunk content got different addresses")
	}
	if !ValidHash(a[0]) || ValidHash("zz") || ValidHash("") {
		t.Fatal("ValidHash misclassifies")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	base := make([]float64, 1000)
	for i := range base {
		base[i] = float64(i)
	}
	vals := append([]float64(nil), base...)
	vals[3] = -1
	vals[4] = -2
	vals[999] = 42

	delta, ok := EncodeDelta(base, vals)
	if !ok {
		t.Fatal("sparse edit should delta-encode")
	}
	if len(delta) >= 8*len(vals) {
		t.Fatalf("delta (%d bytes) not smaller than dense (%d)", len(delta), 8*len(vals))
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("element %d: %v != %v", i, got[i], vals[i])
		}
	}
}

func TestDeltaIdentical(t *testing.T) {
	base := []float64{1, 2, 3}
	delta, ok := EncodeDelta(base, base)
	if !ok || len(delta) != 0 {
		t.Fatalf("identical tensors: delta=%v ok=%v, want empty+true", delta, ok)
	}
	got, err := ApplyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[2] != 3 {
		t.Fatal("empty delta changed values")
	}
}

func TestDeltaRefusesWhenDenseWins(t *testing.T) {
	base := make([]float64, 100)
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i) + 0.5 // every element differs
	}
	if _, ok := EncodeDelta(base, vals); ok {
		t.Fatal("full-rewrite delta should refuse (dense is smaller)")
	}
	if _, ok := EncodeDelta(base, vals[:50]); ok {
		t.Fatal("length mismatch must refuse")
	}
}

func TestApplyDeltaRejectsCorrupt(t *testing.T) {
	base := []float64{1, 2, 3}
	for _, bad := range [][]byte{
		{1, 2, 3},                // truncated header
		{9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // index out of range
		{0, 0, 0, 0, 2, 0, 0, 0, 1, 2, 3},                // truncated run
	} {
		if _, err := ApplyDelta(base, bad); err == nil {
			t.Fatalf("corrupt delta %v accepted", bad)
		}
	}
}
