// Package stats provides the small statistical toolkit the experiment
// harness uses: percentiles, summaries, histograms, and CDF series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the smallest value. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Summary bundles the statistics the experiment tables print.
type Summary struct {
	N             int
	Mean, Std     float64
	MinV, MaxV    float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		MinV: Min(xs),
		MaxV: Max(xs),
		P50:  Percentile(xs, 50),
		P90:  Percentile(xs, 90),
		P99:  Percentile(xs, 99),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.MinV, s.P50, s.P90, s.P99, s.MaxV)
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF of xs sampled at the given fractions
// (e.g. 0.5, 0.9, 0.99).
func CDF(xs []float64, fractions []float64) []CDFPoint {
	pts := make([]CDFPoint, len(fractions))
	for i, f := range fractions {
		pts[i] = CDFPoint{Value: Percentile(xs, f*100), Fraction: f}
	}
	return pts
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with nbins bins.
func NewHistogram(xs []float64, nbins int) Histogram {
	if nbins <= 0 || len(xs) == 0 {
		return Histogram{}
	}
	h := Histogram{Lo: Min(xs), Hi: Max(xs), Counts: make([]int, nbins)}
	span := h.Hi - h.Lo
	if span == 0 {
		h.Counts[0] = len(xs)
		return h
	}
	for _, v := range xs {
		b := int(float64(nbins) * (v - h.Lo) / span)
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
	}
	return h
}
