package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("Percentile(50) = %g, want 5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 {
		t.Fatal("Percentile sorted the caller's slice")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMeanStdMinMax(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if math.Abs(StdDev(xs)-2) > 1e-12 {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs mishandled")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 100 || s.P50 != 49.5 || s.MinV != 0 || s.MaxV != 99 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.P90 <= s.P50 || s.P99 <= s.P90 {
		t.Fatal("percentiles not ordered")
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty Summarize should be zero")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	pts := CDF(xs, []float64{0.5, 1.0})
	if len(pts) != 2 || pts[1].Value != 4 {
		t.Fatalf("CDF = %+v", pts)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Fatalf("histogram total = %d", total)
	}
	if h.Counts[0] != 2 || h.Counts[4] != 2 {
		t.Fatalf("histogram counts = %v", h.Counts)
	}
	flat := NewHistogram([]float64{5, 5, 5}, 3)
	if flat.Counts[0] != 3 {
		t.Fatalf("flat histogram = %v", flat.Counts)
	}
	if len(NewHistogram(nil, 3).Counts) != 0 {
		t.Fatal("empty histogram should have no counts")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw [8]float64, p1, p2 float64) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		xs := raw[:]
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return v1 <= v2+1e-9 && v1 >= sorted[0]-1e-9 && v2 <= sorted[len(sorted)-1]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
