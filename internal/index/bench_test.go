package index

import (
	"fmt"
	"testing"

	"sommelier/internal/resource"
	"sommelier/internal/tensor"
)

func benchResourceIndex(b *testing.B, n int) *ResourceIndex {
	b.Helper()
	rng := tensor.NewRNG(uint64(n))
	ri := NewResourceIndex(1)
	for i := 0; i < n; i++ {
		p := resource.Profile{
			FLOPs:       int64(1e6 + rng.Float64()*1e10),
			MemoryBytes: int64(1e5 + rng.Float64()*1e9),
			LatencyMS:   0.1 + rng.Float64()*100,
		}
		if err := ri.Insert(fmt.Sprintf("m%d", i), p); err != nil {
			b.Fatal(err)
		}
	}
	return ri
}

func BenchmarkResourceInsert(b *testing.B) {
	rng := tensor.NewRNG(9)
	ri := NewResourceIndex(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := resource.Profile{
			FLOPs:       int64(rng.Float64() * 1e10),
			MemoryBytes: int64(rng.Float64() * 1e9),
			LatencyMS:   rng.Float64() * 100,
		}
		if err := ri.Insert(fmt.Sprintf("m%d", i), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResourceCandidates10k(b *testing.B) {
	ri := benchResourceIndex(b, 10000)
	budget := Budget{MaxMemoryBytes: int64(5e8), MaxFLOPs: int64(5e9), MaxLatencyMS: 50}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ri.Candidates(budget, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemanticLookup10k(b *testing.B) {
	si := NewSemanticIndex(3)
	si.SampleSize = 0
	if err := si.Insert(Entry{ID: "ref", Model: tinyModel(b, 1)}, &stubAnalyzer{tag: map[string]float64{}}); err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(4)
	cands := make([]Candidate, 10000)
	for i := range cands {
		cands[i] = Candidate{ID: fmt.Sprintf("m%d", i), Level: rng.Float64()}
	}
	if err := si.InsertPrecomputed("ref", cands); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := si.Lookup("ref", 0.99); err != nil {
			b.Fatal(err)
		}
	}
}
