package index

import (
	"fmt"
	"math"
	"sort"

	"sommelier/internal/lsh"
	"sommelier/internal/resource"
)

// ResourceIndex is the §5.3 structure: an LSH table over resource-profile
// vectors (memoryMB, GFLOPs, latencyMS) supporting fast nearest-profile
// retrieval plus exact per-dimension budget filtering.
type ResourceIndex struct {
	lsh      *lsh.Index
	profiles map[string]resource.Profile
}

// NewResourceIndex returns an empty resource index. Profiles are hashed
// with the p-stable (Euclidean) family over log-transformed vectors:
// resource magnitudes, not directions, are what distinguish models, and
// log space turns "within a factor of k" into a fixed radius.
func NewResourceIndex(seed uint64) *ResourceIndex {
	cfg := lsh.Config{
		Family: lsh.PStable,
		Tables: 6,
		Bits:   4,
		Dim:    3,
		W:      0.8, // log-space bucket width ≈ one 2.2x magnitude band
		Seed:   seed,
	}
	idx, err := lsh.New(cfg)
	if err != nil {
		// The literal config is always valid; this is unreachable.
		panic(err)
	}
	return &ResourceIndex{lsh: idx, profiles: make(map[string]resource.Profile)}
}

// lshCenter is the fixed reference point the hashed vectors are centered
// on (log-space): ~100 MB, ~1 GFLOP, ~10 ms. Raw resource vectors are
// all-positive and span decades, so hashing them directly would pack
// every record into a handful of buckets; log-transforming and centering
// spreads directions across the hash space. The choice of center only
// affects bucket balance, never correctness (exact per-dimension checks
// always follow).
var lshCenter = [3]float64{math.Log1p(100), math.Log1p(1), math.Log1p(10)}

func lshVector(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		if x < 0 {
			x = 0
		}
		out[i] = math.Log1p(x) - lshCenter[i]
	}
	return out
}

// Len returns the number of indexed profiles.
func (r *ResourceIndex) Len() int { return len(r.profiles) }

// Insert stores the model's resource profile under its ID.
func (r *ResourceIndex) Insert(id string, p resource.Profile) error {
	if id == "" {
		return fmt.Errorf("index: resource insert needs an ID")
	}
	if err := r.lsh.Insert(id, lshVector(p.Vector())); err != nil {
		return err
	}
	r.profiles[id] = p
	return nil
}

// Profile returns the stored profile for id.
func (r *ResourceIndex) Profile(id string) (resource.Profile, bool) {
	p, ok := r.profiles[id]
	return p, ok
}

// Budget expresses absolute per-dimension upper limits. Zero-valued
// fields are unconstrained.
type Budget struct {
	MaxMemoryBytes int64
	MaxFLOPs       int64
	MaxLatencyMS   float64
}

// Satisfies reports whether profile p fits within the budget.
func (b Budget) Satisfies(p resource.Profile) bool {
	if b.MaxMemoryBytes > 0 && p.MemoryBytes > b.MaxMemoryBytes {
		return false
	}
	if b.MaxFLOPs > 0 && p.FLOPs > b.MaxFLOPs {
		return false
	}
	if b.MaxLatencyMS > 0 && p.LatencyMS > b.MaxLatencyMS {
		return false
	}
	return true
}

// probeVector is the LSH probe for a budget: a point *inside* the
// feasible region (half the limit on each constrained dimension, the
// center value on unconstrained ones), since satisfying profiles are
// dominated by the budget, not adjacent to it.
func (b Budget) probeVector() []float64 {
	raw := resource.Profile{
		MemoryBytes: b.MaxMemoryBytes / 2,
		FLOPs:       b.MaxFLOPs / 2,
		LatencyMS:   b.MaxLatencyMS / 2,
	}.Vector()
	out := lshVector(raw)
	for i, v := range raw {
		if v == 0 {
			out[i] = 0 // unconstrained: sit at the center
		}
	}
	return out
}

// Candidates returns the IDs whose profiles satisfy the budget in every
// constrained dimension, following the paper's two-phase lookup: an LSH
// probe around the constraint vector retrieves profile-similar models,
// then exact dimension checks filter them. When the probe finds nothing
// satisfying (small or skewed indexes), it falls back to an exact scan so
// queries never silently miss feasible models.
func (r *ResourceIndex) Candidates(b Budget, maxDist float64) ([]string, error) {
	return budgetCandidates(r.lsh, r.profiles, b, maxDist)
}

// CandidatesExact scans every profile — the ablation baseline.
func (r *ResourceIndex) CandidatesExact(b Budget) []string {
	return exactCandidates(r.profiles, b)
}

// budgetCandidates implements the two-phase budget lookup shared by the
// mutable index and its immutable views.
func budgetCandidates(idx *lsh.Index, profiles map[string]resource.Profile, b Budget, maxDist float64) ([]string, error) {
	if b == (Budget{}) {
		// No upper bounds at all: every profile is a candidate.
		return exactCandidates(profiles, b), nil
	}
	if maxDist <= 0 {
		// Default probe radius: ~2 log-space units, about one order of
		// magnitude around the probe point.
		maxDist = 2
	}
	probe := b.probeVector()
	matches, err := idx.Query(probe, maxDist)
	if err != nil {
		return nil, err
	}
	out := filterByBudget(profiles, matchIDs(matches), b)
	if len(out) > 0 {
		return out, nil
	}
	// The probe's buckets held no satisfying profile (small or skewed
	// populations); fall back to the exact per-dimension scan so queries
	// never silently miss feasible models.
	return exactCandidates(profiles, b), nil
}

func exactCandidates(profiles map[string]resource.Profile, b Budget) []string {
	ids := make([]string, 0, len(profiles))
	for id := range profiles {
		ids = append(ids, id)
	}
	// The scan collects IDs in map order; sort before filtering so the
	// fallback path returns the same candidate order on every run.
	sort.Strings(ids)
	return filterByBudget(profiles, ids, b)
}

func matchIDs(ms []lsh.Match) []string {
	ids := make([]string, len(ms))
	for i, m := range ms {
		ids[i] = m.ID
	}
	return ids
}

func filterByBudget(profiles map[string]resource.Profile, ids []string, b Budget) []string {
	var out []string
	for _, id := range ids {
		if b.Satisfies(profiles[id]) {
			out = append(out, id)
		}
	}
	return out
}

// MemoryBytes estimates the index footprint for the Table 4 experiment.
func (r *ResourceIndex) MemoryBytes() int64 {
	var total int64
	total += r.lsh.MemoryBytes()
	for id := range r.profiles {
		total += int64(len(id)) + 32
	}
	return total
}
