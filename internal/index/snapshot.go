package index

import (
	"fmt"

	"sommelier/internal/graph"
	"sommelier/internal/resource"
)

// Snapshots implement §5.5's persistence note: both indices are plain
// data structures whose contents can be populated to disk and restored
// without re-running the (expensive, offline) pairwise analysis. Models
// themselves always stay in the repository; snapshots carry metadata
// only.

// SemanticEntrySnapshot is one serialized semantic-index entry.
type SemanticEntrySnapshot struct {
	ID          string             `json:"id"`
	Fingerprint string             `json:"fingerprint"`
	Candidates  []Candidate        `json:"candidates,omitempty"`
	Measured    map[string]float64 `json:"measured,omitempty"`
}

// SemanticSnapshot is the serializable state of a SemanticIndex.
type SemanticSnapshot struct {
	SampleSize int                     `json:"sample_size"`
	Entries    []SemanticEntrySnapshot `json:"entries"`
}

// Snapshot captures the index's current state in insertion order.
func (s *SemanticIndex) Snapshot() SemanticSnapshot {
	snap := SemanticSnapshot{SampleSize: s.SampleSize}
	for _, id := range s.order {
		rec := s.entries[id]
		e := SemanticEntrySnapshot{
			ID:          id,
			Fingerprint: rec.fingerprint,
			Candidates:  append([]Candidate(nil), rec.candidates...),
		}
		if len(rec.measured) > 0 {
			e.Measured = make(map[string]float64, len(rec.measured))
			for k, v := range rec.measured {
				e.Measured[k] = v
			}
		}
		snap.Entries = append(snap.Entries, e)
	}
	return snap
}

// Restore replaces the index's contents with a snapshot. resolve maps a
// model ID back to its graph (normally repo.Load) so future insertions
// can analyze against restored entries; it may return nil for models
// that will never be re-analyzed.
func (s *SemanticIndex) Restore(snap SemanticSnapshot, resolve func(id string) (*graph.Model, error)) error {
	entries := make(map[string]*semEntry, len(snap.Entries))
	byFP := make(map[string]string, len(snap.Entries))
	order := make([]string, 0, len(snap.Entries))
	for _, e := range snap.Entries {
		if e.ID == "" {
			return fmt.Errorf("index: snapshot entry without ID")
		}
		if _, dup := entries[e.ID]; dup {
			return fmt.Errorf("index: snapshot has duplicate entry %q", e.ID)
		}
		var m *graph.Model
		if resolve != nil {
			var err error
			m, err = resolve(e.ID)
			if err != nil {
				return fmt.Errorf("index: resolving %q: %w", e.ID, err)
			}
		}
		rec := &semEntry{
			entry:       Entry{ID: e.ID, Model: m},
			fingerprint: e.Fingerprint,
			candidates:  append([]Candidate(nil), e.Candidates...),
			measured:    make(map[string]float64, len(e.Measured)),
		}
		for k, v := range e.Measured {
			rec.measured[k] = v
		}
		entries[e.ID] = rec
		byFP[e.Fingerprint] = e.ID
		order = append(order, e.ID)
	}
	if snap.SampleSize > 0 {
		s.SampleSize = snap.SampleSize
	}
	s.entries = entries
	s.byFP = byFP
	s.order = order
	return nil
}

// ResourceSnapshot is the serializable state of a ResourceIndex.
type ResourceSnapshot struct {
	Profiles map[string]resource.Profile `json:"profiles"`
}

// Snapshot captures all stored profiles.
func (r *ResourceIndex) Snapshot() ResourceSnapshot {
	snap := ResourceSnapshot{Profiles: make(map[string]resource.Profile, len(r.profiles))}
	for id, p := range r.profiles {
		snap.Profiles[id] = p
	}
	return snap
}

// Restore replaces the index's contents with a snapshot, rebuilding the
// LSH tables.
func (r *ResourceIndex) Restore(snap ResourceSnapshot) error {
	for id := range r.profiles {
		r.lsh.Remove(id)
	}
	r.profiles = make(map[string]resource.Profile, len(snap.Profiles))
	for id, p := range snap.Profiles {
		if err := r.Insert(id, p); err != nil {
			return err
		}
	}
	return nil
}
