package index

import (
	"fmt"
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/resource"
	"sommelier/internal/tensor"
)

// stubAnalyzer scores pairs by the absolute difference of a per-model
// numeric tag, mimicking controllable functional distance.
type stubAnalyzer struct {
	tag map[string]float64
	// calls counts Analyze invocations, to verify sampling.
	calls int
}

func (s *stubAnalyzer) Analyze(ref, cand Entry) (AnalysisResult, error) {
	s.calls++
	diff := s.tag[ref.ID] - s.tag[cand.ID]
	if diff < 0 {
		diff = -diff
	}
	lvl := 1 - diff
	if lvl < 0 {
		lvl = 0
	}
	return AnalysisResult{LevelForRef: lvl, LevelForCand: lvl}, nil
}

func tinyModel(t testing.TB, seed uint64) *graph.Model {
	t.Helper()
	b := graph.NewBuilder(fmt.Sprintf("m%d", seed), graph.TaskClassification, tensor.Shape{4}, tensor.NewRNG(seed))
	b.Dense(4)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSemanticInsertAndLookup(t *testing.T) {
	idx := NewSemanticIndex(1)
	an := &stubAnalyzer{tag: map[string]float64{"a": 0.0, "b": 0.05, "c": 0.5}}
	for i, id := range []string{"a", "b", "c"} {
		if err := idx.Insert(Entry{ID: id, Model: tinyModel(t, uint64(i+1))}, an); err != nil {
			t.Fatal(err)
		}
	}
	if idx.Len() != 3 {
		t.Fatalf("Len = %d", idx.Len())
	}
	cands, err := idx.Lookup("a", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].ID != "b" {
		t.Fatalf("Lookup(a, 0.9) = %+v", cands)
	}
	all, err := idx.Lookup("a", 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("Lookup(a, 0) = %+v", all)
	}
	// Descending order.
	if all[0].Level < all[1].Level {
		t.Fatal("candidate list not descending")
	}
}

func TestSemanticLookupUnknown(t *testing.T) {
	idx := NewSemanticIndex(1)
	if _, err := idx.Lookup("ghost", 0); err == nil {
		t.Fatal("expected error for unknown reference")
	}
}

func TestSemanticDuplicateInsert(t *testing.T) {
	idx := NewSemanticIndex(1)
	an := &stubAnalyzer{tag: map[string]float64{"a": 0}}
	m := tinyModel(t, 1)
	if err := idx.Insert(Entry{ID: "a", Model: m}, an); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(Entry{ID: "a", Model: m}, an); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := idx.Insert(Entry{ID: "", Model: m}, an); err == nil {
		t.Fatal("expected empty-ID error")
	}
}

func TestSemanticSamplingBoundsAnalyzerCalls(t *testing.T) {
	idx := NewSemanticIndex(7)
	tags := make(map[string]float64)
	an := &stubAnalyzer{tag: tags}
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("m%d", i)
		tags[id] = float64(i) / 100
		if err := idx.Insert(Entry{ID: id, Model: tinyModel(t, uint64(i+1))}, an); err != nil {
			t.Fatal(err)
		}
	}
	// With SampleSize 5, insert i makes min(i, 5) calls: 0+1+2+3+4 + 25*5.
	want := 0 + 1 + 2 + 3 + 4 + 25*5
	if an.calls != want {
		t.Fatalf("analyzer calls = %d, want %d", an.calls, want)
	}
	// Despite sampling, every model should still see most others via
	// transitive derivation.
	cands, err := idx.Lookup("m0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 20 {
		t.Fatalf("transitive derivation too sparse: %d candidates", len(cands))
	}
}

func TestSemanticTransitiveLevelsAreConservative(t *testing.T) {
	idx := NewSemanticIndex(3)
	tags := map[string]float64{}
	an := &stubAnalyzer{tag: tags}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("m%d", i)
		tags[id] = float64(i) * 0.01
		if err := idx.Insert(Entry{ID: id, Model: tinyModel(t, uint64(i+1))}, an); err != nil {
			t.Fatal(err)
		}
	}
	cands, err := idx.Lookup("m19", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		trueLvl := 1 - (tags["m19"] - tags[c.ID])
		if tags[c.ID] > tags["m19"] {
			trueLvl = 1 - (tags[c.ID] - tags["m19"])
		}
		if !c.Derived {
			if diff := c.Level - trueLvl; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("measured level for %s = %g, want %g", c.ID, c.Level, trueLvl)
			}
			continue
		}
		// Derived levels use the triangle upper bound on the diff, so
		// they must never overstate equivalence.
		if c.Level > trueLvl+1e-9 {
			t.Fatalf("derived level for %s = %g exceeds true %g", c.ID, c.Level, trueLvl)
		}
	}
}

func TestSemanticTopK(t *testing.T) {
	idx := NewSemanticIndex(1)
	an := &stubAnalyzer{tag: map[string]float64{"a": 0, "b": 0.1, "c": 0.2, "d": 0.9}}
	for i, id := range []string{"a", "b", "c", "d"} {
		if err := idx.Insert(Entry{ID: id, Model: tinyModel(t, uint64(i+1))}, an); err != nil {
			t.Fatal(err)
		}
	}
	top, err := idx.TopK("a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 || top[0].ID != "b" || top[1].ID != "c" {
		t.Fatalf("TopK = %+v", top)
	}
	all, _ := idx.TopK("a", 100)
	if len(all) != 3 {
		t.Fatalf("TopK over-capacity = %d", len(all))
	}
}

func TestSemanticFingerprintLookup(t *testing.T) {
	idx := NewSemanticIndex(1)
	an := &stubAnalyzer{tag: map[string]float64{"a": 0}}
	m := tinyModel(t, 5)
	if err := idx.Insert(Entry{ID: "a", Model: m}, an); err != nil {
		t.Fatal(err)
	}
	id, ok := idx.LookupByFingerprint(m.Fingerprint())
	if !ok || id != "a" {
		t.Fatalf("fingerprint lookup = %q, %v", id, ok)
	}
	if _, ok := idx.LookupByFingerprint("nope"); ok {
		t.Fatal("unknown fingerprint resolved")
	}
}

func TestInsertSortedReplacesSameKey(t *testing.T) {
	list := insertSorted(nil, Candidate{ID: "x", Level: 0.5})
	list = insertSorted(list, Candidate{ID: "x", Level: 0.8})
	if len(list) != 1 || list[0].Level != 0.8 {
		t.Fatalf("replace failed: %+v", list)
	}
	list = insertSorted(list, Candidate{ID: "x", Level: 0.3})
	if len(list) != 1 || list[0].Level != 0.8 {
		t.Fatalf("lower level should not replace: %+v", list)
	}
	list = insertSorted(list, Candidate{ID: "x", Level: 0.9, Kind: KindSynthesized, Segment: "s"})
	if len(list) != 2 {
		t.Fatalf("different kind should coexist: %+v", list)
	}
}

func TestSemanticMemoryGrows(t *testing.T) {
	idx := NewSemanticIndex(1)
	tags := map[string]float64{}
	an := &stubAnalyzer{tag: tags}
	sizes := []int64{}
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("m%d", i)
		tags[id] = float64(i) * 0.001
		if err := idx.Insert(Entry{ID: id, Model: tinyModel(t, uint64(i+1))}, an); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, idx.MemoryBytes())
	}
	if sizes[49] <= sizes[0] {
		t.Fatal("memory estimate did not grow")
	}
}

func TestResourceIndexInsertAndBudget(t *testing.T) {
	ri := NewResourceIndex(2)
	profiles := map[string]resource.Profile{
		"small": {FLOPs: 1e6, MemoryBytes: 10 << 20, LatencyMS: 1},
		"mid":   {FLOPs: 1e8, MemoryBytes: 100 << 20, LatencyMS: 10},
		"big":   {FLOPs: 1e10, MemoryBytes: 1000 << 20, LatencyMS: 100},
	}
	for id, p := range profiles {
		if err := ri.Insert(id, p); err != nil {
			t.Fatal(err)
		}
	}
	if ri.Len() != 3 {
		t.Fatalf("Len = %d", ri.Len())
	}
	b := Budget{MaxMemoryBytes: 150 << 20, MaxFLOPs: 5e8, MaxLatencyMS: 50}
	got, err := ri.Candidates(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"small": true, "mid": true}
	if len(got) != 2 {
		t.Fatalf("Candidates = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected candidate %q", id)
		}
	}
	exact := ri.CandidatesExact(b)
	if len(exact) != 2 {
		t.Fatalf("CandidatesExact = %v", exact)
	}
}

func TestBudgetUnconstrainedDims(t *testing.T) {
	b := Budget{MaxMemoryBytes: 100}
	if !b.Satisfies(resource.Profile{MemoryBytes: 50, FLOPs: 1e12, LatencyMS: 1e6}) {
		t.Fatal("unconstrained dimensions should not filter")
	}
	if b.Satisfies(resource.Profile{MemoryBytes: 200}) {
		t.Fatal("constrained dimension ignored")
	}
}

func TestResourceIndexFallbackFindsFeasible(t *testing.T) {
	// A single tiny model whose vector points away from the budget
	// vector: the LSH probe may miss it, but the exact fallback must
	// find it.
	ri := NewResourceIndex(3)
	if err := ri.Insert("tiny", resource.Profile{FLOPs: 1, MemoryBytes: 1, LatencyMS: 100}); err != nil {
		t.Fatal(err)
	}
	got, err := ri.Candidates(Budget{MaxMemoryBytes: 1 << 30, MaxLatencyMS: 1000}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "tiny" {
		t.Fatalf("fallback failed: %v", got)
	}
}

func TestResourceIndexErrors(t *testing.T) {
	ri := NewResourceIndex(4)
	if err := ri.Insert("", resource.Profile{}); err == nil {
		t.Fatal("expected empty-ID error")
	}
	if _, ok := ri.Profile("ghost"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestResourceIndexMemoryGrows(t *testing.T) {
	ri := NewResourceIndex(5)
	base := ri.MemoryBytes()
	for i := 0; i < 100; i++ {
		ri.Insert(fmt.Sprintf("m%d", i), resource.Profile{FLOPs: int64(i), MemoryBytes: int64(i), LatencyMS: float64(i)})
	}
	if ri.MemoryBytes() <= base {
		t.Fatal("memory estimate did not grow")
	}
}
