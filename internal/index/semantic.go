// Package index implements Sommelier's two run-time index structures
// (§5): the semantic index, a hashtable from model fingerprints to
// descending lists of functionally equivalent candidates, and the
// resource-profile index, an LSH structure over resource vectors.
package index

import (
	"fmt"
	"sort"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// CandidateKind distinguishes real stored models from synthesized
// segment-replacement models (§5.2 insertion case (ii)).
type CandidateKind int

const (
	// KindWhole is a real model holistically equivalent to the key.
	KindWhole CandidateKind = iota
	// KindSynthesized is a model obtained by replacing a segment of the
	// keyed model with a segment of another stored model.
	KindSynthesized
)

func (k CandidateKind) String() string {
	if k == KindSynthesized {
		return "synthesized"
	}
	return "whole"
}

// Candidate is one record in a semantic-index candidate list.
type Candidate struct {
	// ID names the candidate model in the repository; synthesized
	// candidates carry the donor model's ID in DonorID and a segment
	// description in Segment.
	ID      string
	Level   float64
	Kind    CandidateKind
	DonorID string
	Segment string
	// Derived marks levels obtained transitively rather than measured.
	Derived bool
}

// Entry couples a repository model ID with its graph for analysis.
type Entry struct {
	ID    string
	Model *graph.Model
}

// AnalysisResult is what an Analyzer reports for one ordered pair.
type AnalysisResult struct {
	// LevelForRef is the equivalence level of the candidate when it
	// stands in for the reference (asymmetric, §4.3).
	LevelForRef float64
	// LevelForCand is the reverse direction.
	LevelForCand float64
	// SynthForRef lists synthesized candidates for the reference's
	// entry (segment of candidate transplanted into reference).
	SynthForRef []Candidate
	// SynthForCand lists synthesized candidates for the candidate's
	// entry.
	SynthForCand []Candidate
}

// Analyzer measures pairwise functional equivalence. internal/equiv
// provides the real implementation; tests may stub it.
type Analyzer interface {
	Analyze(ref, cand Entry) (AnalysisResult, error)
}

// SemanticIndex is the §5.2 structure: for each stored model, a list of
// candidate records ordered by descending functional-equivalence level.
type SemanticIndex struct {
	// SampleSize is how many existing models a new insertion is
	// measured against directly (the paper uses 5); the rest are
	// derived transitively.
	SampleSize int

	entries map[string]*semEntry // keyed by model ID
	byFP    map[string]string    // fingerprint -> model ID
	order   []string             // insertion order, for deterministic sampling
	rng     *tensor.RNG
}

type semEntry struct {
	entry       Entry
	fingerprint string
	candidates  []Candidate
	// measured records which other IDs have a directly measured level
	// (used for transitive derivation).
	measured map[string]float64 // other ID -> diff (1 - level)
}

// NewSemanticIndex returns an empty semantic index with the paper's
// 5-sample insertion policy.
func NewSemanticIndex(seed uint64) *SemanticIndex {
	return &SemanticIndex{
		SampleSize: 5,
		entries:    make(map[string]*semEntry),
		byFP:       make(map[string]string),
		rng:        tensor.NewRNG(seed),
	}
}

// Len returns the number of indexed models.
func (s *SemanticIndex) Len() int { return len(s.entries) }

// IDs returns the indexed model IDs in insertion order.
func (s *SemanticIndex) IDs() []string { return append([]string(nil), s.order...) }

// Contains reports whether the model ID is indexed.
func (s *SemanticIndex) Contains(id string) bool {
	_, ok := s.entries[id]
	return ok
}

// Insert adds a model, measuring equivalence against up to SampleSize
// randomly chosen existing models via the analyzer and deriving levels to
// the remainder transitively (§5.2).
func (s *SemanticIndex) Insert(e Entry, analyzer Analyzer) error {
	if e.ID == "" || e.Model == nil {
		return fmt.Errorf("index: entry must have an ID and a model")
	}
	if _, dup := s.entries[e.ID]; dup {
		return fmt.Errorf("index: model %q already indexed", e.ID)
	}
	rec := &semEntry{
		entry:       e,
		fingerprint: e.Model.Fingerprint(),
		measured:    make(map[string]float64),
	}

	// Choose up to SampleSize existing models uniformly at random.
	k := s.SampleSize
	if k <= 0 {
		k = 5
	}
	var sampled []string
	if len(s.order) <= k {
		sampled = append(sampled, s.order...)
	} else {
		perm := s.rng.Perm(len(s.order))
		for _, p := range perm[:k] {
			sampled = append(sampled, s.order[p])
		}
	}

	for _, otherID := range sampled {
		other := s.entries[otherID]
		res, err := analyzer.Analyze(e, other.entry)
		if err != nil {
			return fmt.Errorf("index: analyzing %q vs %q: %w", e.ID, otherID, err)
		}
		// res.LevelForRef: candidate (other) standing in for the new
		// model; goes to the new entry's list.
		if res.LevelForRef > 0 {
			rec.candidates = insertSorted(rec.candidates, Candidate{
				ID: otherID, Level: res.LevelForRef, Kind: KindWhole,
			})
		}
		if res.LevelForCand > 0 {
			other.candidates = insertSorted(other.candidates, Candidate{
				ID: e.ID, Level: res.LevelForCand, Kind: KindWhole,
			})
		}
		rec.measured[otherID] = 1 - res.LevelForRef
		other.measured[e.ID] = 1 - res.LevelForCand
		for _, c := range res.SynthForRef {
			rec.candidates = insertSorted(rec.candidates, c)
		}
		for _, c := range res.SynthForCand {
			other.candidates = insertSorted(other.candidates, c)
		}
	}

	// Transitive derivation: for every unsampled model Z reachable
	// through a sampled Y, diff(new, Z) is bounded above by
	// diff(new, Y) + diff(Y, Z); the paper's |A−B| lower bound is not
	// needed for ranking, so the conservative upper bound is stored.
	sampledSet := make(map[string]bool, len(sampled))
	for _, id := range sampled {
		sampledSet[id] = true
	}
	for _, otherID := range s.order {
		if sampledSet[otherID] {
			continue
		}
		other := s.entries[otherID]
		best := -1.0
		for _, y := range sampled {
			dNewY, ok := rec.measured[y]
			if !ok {
				continue
			}
			dYZ, ok := s.entries[y].measured[otherID]
			if !ok {
				continue
			}
			if lvl := 1 - (dNewY + dYZ); lvl > best {
				best = lvl
			}
		}
		if best > 0 {
			rec.candidates = insertSorted(rec.candidates, Candidate{
				ID: otherID, Level: best, Kind: KindWhole, Derived: true,
			})
			other.candidates = insertSorted(other.candidates, Candidate{
				ID: e.ID, Level: best, Kind: KindWhole, Derived: true,
			})
			rec.measured[otherID] = 1 - best
			other.measured[e.ID] = 1 - best
		}
	}

	s.entries[e.ID] = rec
	s.byFP[rec.fingerprint] = e.ID
	s.order = append(s.order, e.ID)
	return nil
}

func insertSorted(list []Candidate, c Candidate) []Candidate {
	// Replace an existing record for the same (ID, Kind, Segment) if
	// the new level is better.
	for i, old := range list {
		if old.ID == c.ID && old.Kind == c.Kind && old.Segment == c.Segment {
			if c.Level <= old.Level {
				return list
			}
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	pos := sort.Search(len(list), func(i int) bool { return list[i].Level < c.Level })
	list = append(list, Candidate{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}

// InsertPrecomputed bulk-loads candidate records for an already indexed
// model, bypassing pairwise analysis. It serves two purposes: importing
// designer annotations (§5.5) and populating index-structure benchmarks
// at 100K-record scale, where per-record sorted insertion would be
// quadratic. Records are sorted descending and replace the existing list
// merged with it.
func (s *SemanticIndex) InsertPrecomputed(refID string, cands []Candidate) error {
	rec, ok := s.entries[refID]
	if !ok {
		return fmt.Errorf("index: model %q is not indexed", refID)
	}
	merged := append(append([]Candidate(nil), rec.candidates...), cands...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Level > merged[j].Level })
	rec.candidates = merged
	return nil
}

// Lookup returns, in descending level order, all candidates of the model
// identified by refID whose equivalence level meets the threshold.
func (s *SemanticIndex) Lookup(refID string, threshold float64) ([]Candidate, error) {
	rec, ok := s.entries[refID]
	if !ok {
		return nil, fmt.Errorf("index: model %q is not indexed", refID)
	}
	// The list is sorted descending: binary-search the cutoff and copy
	// the matching prefix in one allocation.
	cut := sort.Search(len(rec.candidates), func(i int) bool {
		return rec.candidates[i].Level < threshold
	})
	if cut == 0 {
		return nil, nil
	}
	return append([]Candidate(nil), rec.candidates[:cut]...), nil
}

// LookupByFingerprint resolves a model fingerprint to its indexed ID —
// the paper's key calculation on query submission.
func (s *SemanticIndex) LookupByFingerprint(fp string) (string, bool) {
	id, ok := s.byFP[fp]
	return id, ok
}

// TopK returns the refID's K best candidates regardless of threshold.
func (s *SemanticIndex) TopK(refID string, k int) ([]Candidate, error) {
	rec, ok := s.entries[refID]
	if !ok {
		return nil, fmt.Errorf("index: model %q is not indexed", refID)
	}
	if k > len(rec.candidates) {
		k = len(rec.candidates)
	}
	return append([]Candidate(nil), rec.candidates[:k]...), nil
}

// MemoryBytes estimates the in-memory footprint of the semantic index:
// fingerprints, candidate records, and the measured-diff maps. Models
// themselves live in the repository, not here (§5.5, persistence).
func (s *SemanticIndex) MemoryBytes() int64 {
	var total int64
	for id, rec := range s.entries {
		total += int64(len(id)) + int64(len(rec.fingerprint)) + 48
		for _, c := range rec.candidates {
			total += int64(len(c.ID)+len(c.DonorID)+len(c.Segment)) + 40
		}
		total += int64(len(rec.measured)) * 56
	}
	return total
}
