// Package index implements Sommelier's two run-time index structures
// (§5): the semantic index, a hashtable from model fingerprints to
// descending lists of functionally equivalent candidates, and the
// resource-profile index, an LSH structure over resource vectors.
package index

import (
	"errors"
	"fmt"
	"sort"

	"sommelier/internal/graph"
	"sommelier/internal/tensor"
)

// ErrAlreadyIndexed is wrapped by Insert and CommitPlanned when the ID
// is already present. Staged pipelines treat it as "another writer got
// here first" and dedup by skipping the commit.
var ErrAlreadyIndexed = errors.New("already indexed")

// CandidateKind distinguishes real stored models from synthesized
// segment-replacement models (§5.2 insertion case (ii)).
type CandidateKind int

const (
	// KindWhole is a real model holistically equivalent to the key.
	KindWhole CandidateKind = iota
	// KindSynthesized is a model obtained by replacing a segment of the
	// keyed model with a segment of another stored model.
	KindSynthesized
)

func (k CandidateKind) String() string {
	if k == KindSynthesized {
		return "synthesized"
	}
	return "whole"
}

// Candidate is one record in a semantic-index candidate list.
type Candidate struct {
	// ID names the candidate model in the repository; synthesized
	// candidates carry the donor model's ID in DonorID and a segment
	// description in Segment.
	ID      string
	Level   float64
	Kind    CandidateKind
	DonorID string
	Segment string
	// Derived marks levels obtained transitively rather than measured.
	Derived bool
}

// Entry couples a repository model ID with its graph for analysis.
type Entry struct {
	ID    string
	Model *graph.Model
}

// AnalysisResult is what an Analyzer reports for one ordered pair.
type AnalysisResult struct {
	// LevelForRef is the equivalence level of the candidate when it
	// stands in for the reference (asymmetric, §4.3).
	LevelForRef float64
	// LevelForCand is the reverse direction.
	LevelForCand float64
	// SynthForRef lists synthesized candidates for the reference's
	// entry (segment of candidate transplanted into reference).
	SynthForRef []Candidate
	// SynthForCand lists synthesized candidates for the candidate's
	// entry.
	SynthForCand []Candidate
}

// Analyzer measures pairwise functional equivalence. internal/equiv
// provides the real implementation; tests may stub it.
type Analyzer interface {
	Analyze(ref, cand Entry) (AnalysisResult, error)
}

// SemanticIndex is the §5.2 structure: for each stored model, a list of
// candidate records ordered by descending functional-equivalence level.
type SemanticIndex struct {
	// SampleSize is how many existing models a new insertion is
	// measured against directly (the paper uses 5); the rest are
	// derived transitively.
	SampleSize int

	entries map[string]*semEntry // keyed by model ID
	byFP    map[string]string    // fingerprint -> model ID
	order   []string             // insertion order, for deterministic sampling
	rng     *tensor.RNG
}

type semEntry struct {
	entry       Entry
	fingerprint string
	candidates  []Candidate
	// measured records which other IDs have a directly measured level
	// (used for transitive derivation).
	measured map[string]float64 // other ID -> diff (1 - level)
}

// NewSemanticIndex returns an empty semantic index with the paper's
// 5-sample insertion policy.
func NewSemanticIndex(seed uint64) *SemanticIndex {
	return &SemanticIndex{
		SampleSize: 5,
		entries:    make(map[string]*semEntry),
		byFP:       make(map[string]string),
		rng:        tensor.NewRNG(seed),
	}
}

// Len returns the number of indexed models.
func (s *SemanticIndex) Len() int { return len(s.entries) }

// Stats is the semantic index's size digest: how many models are
// indexed and how the candidate edges among them break down. The
// catalog folds it into the unified metrics snapshot as gauges.
type Stats struct {
	Models      int // indexed models
	Candidates  int // candidate edges across all models
	Derived     int // edges whose level was derived transitively
	Synthesized int // segment-synthesized candidate edges
}

// Stats walks the index and counts. Callers synchronize as for any
// other read.
func (s *SemanticIndex) Stats() Stats {
	st := Stats{Models: len(s.entries)}
	for _, e := range s.entries {
		st.Candidates += len(e.candidates)
		for _, c := range e.candidates {
			if c.Derived {
				st.Derived++
			}
			if c.Kind == KindSynthesized {
				st.Synthesized++
			}
		}
	}
	return st
}

// IDs returns the indexed model IDs in insertion order.
func (s *SemanticIndex) IDs() []string { return append([]string(nil), s.order...) }

// Contains reports whether the model ID is indexed.
func (s *SemanticIndex) Contains(id string) bool {
	_, ok := s.entries[id]
	return ok
}

// Insert adds a model, measuring equivalence against up to SampleSize
// randomly chosen existing models via the analyzer and deriving levels to
// the remainder transitively (§5.2). It is the serial composition of the
// staged API: PlanInserts draws the sample, the analyzer measures each
// planned pair, and CommitPlanned applies the results.
func (s *SemanticIndex) Insert(e Entry, analyzer Analyzer) error {
	if e.ID == "" || e.Model == nil {
		return fmt.Errorf("index: entry must have an ID and a model")
	}
	if _, dup := s.entries[e.ID]; dup {
		return fmt.Errorf("index: model %q %w", e.ID, ErrAlreadyIndexed)
	}
	plan := s.PlanInserts([]Entry{e})[0]
	meas := make([]PairMeasurement, 0, len(plan.Partners))
	for _, otherID := range plan.Partners {
		res, err := analyzer.Analyze(e, s.entries[otherID].entry)
		if err != nil {
			return fmt.Errorf("index: analyzing %q vs %q: %w", e.ID, otherID, err)
		}
		meas = append(meas, PairMeasurement{Partner: otherID, Result: res})
	}
	return s.CommitPlanned(e, meas)
}

// SamplePlan pre-records the partners one future insertion will be
// measured against, in draw order.
type SamplePlan struct {
	Entry    Entry
	Partners []string
}

// PairMeasurement carries the analyzer's verdict for one planned
// partner, in the plan's draw order.
type PairMeasurement struct {
	Partner string
	Result  AnalysisResult
}

// PlanInserts stages a sequence of insertions: for each entry it draws
// the sampled partner set exactly as the equivalent sequence of serial
// Insert calls would — consuming the index RNG in the same order, with
// later entries able to sample earlier ones — without mutating index
// state. The caller measures the planned pairs (possibly in parallel,
// outside any lock) and applies them with CommitPlanned in plan order;
// for a fixed seed the resulting index is byte-identical to serial
// insertion regardless of how the measurements were scheduled.
func (s *SemanticIndex) PlanInserts(entries []Entry) []SamplePlan {
	k := s.SampleSize
	if k <= 0 {
		k = 5
	}
	virtual := append([]string(nil), s.order...)
	plans := make([]SamplePlan, 0, len(entries))
	for _, e := range entries {
		var partners []string
		if len(virtual) <= k {
			partners = append(partners, virtual...)
		} else {
			perm := s.rng.Perm(len(virtual))
			for _, p := range perm[:k] {
				partners = append(partners, virtual[p])
			}
		}
		plans = append(plans, SamplePlan{Entry: e, Partners: partners})
		virtual = append(virtual, e.ID)
	}
	return plans
}

// EntryOf returns the stored entry (ID plus model graph) for id — the
// material a staged pipeline needs to analyze new models against
// already committed ones.
func (s *SemanticIndex) EntryOf(id string) (Entry, bool) {
	rec, ok := s.entries[id]
	if !ok {
		return Entry{}, false
	}
	return rec.entry, true
}

// CommitPlanned applies one planned insertion whose pairwise
// measurements were computed outside the index. It replays exactly what
// Insert does after analysis: symmetric candidate recording for each
// measured partner, then transitive derivation against every remaining
// indexed model. Committing an ID that was indexed in the meantime
// fails with ErrAlreadyIndexed.
func (s *SemanticIndex) CommitPlanned(e Entry, meas []PairMeasurement) error {
	if e.ID == "" || e.Model == nil {
		return fmt.Errorf("index: entry must have an ID and a model")
	}
	if _, dup := s.entries[e.ID]; dup {
		return fmt.Errorf("index: model %q %w", e.ID, ErrAlreadyIndexed)
	}
	for _, pm := range meas {
		if _, ok := s.entries[pm.Partner]; !ok {
			return fmt.Errorf("index: planned partner %q is not indexed", pm.Partner)
		}
	}
	rec := &semEntry{
		entry:       e,
		fingerprint: e.Model.Fingerprint(),
		measured:    make(map[string]float64),
	}

	for _, pm := range meas {
		other := s.entries[pm.Partner]
		res := pm.Result
		// res.LevelForRef: candidate (other) standing in for the new
		// model; goes to the new entry's list.
		if res.LevelForRef > 0 {
			rec.candidates = insertSorted(rec.candidates, Candidate{
				ID: pm.Partner, Level: res.LevelForRef, Kind: KindWhole,
			})
		}
		if res.LevelForCand > 0 {
			other.candidates = insertSorted(other.candidates, Candidate{
				ID: e.ID, Level: res.LevelForCand, Kind: KindWhole,
			})
		}
		rec.measured[pm.Partner] = 1 - res.LevelForRef
		other.measured[e.ID] = 1 - res.LevelForCand
		for _, c := range res.SynthForRef {
			rec.candidates = insertSorted(rec.candidates, c)
		}
		for _, c := range res.SynthForCand {
			other.candidates = insertSorted(other.candidates, c)
		}
	}

	// Transitive derivation: for every unsampled model Z reachable
	// through a sampled Y, diff(new, Z) is bounded above by
	// diff(new, Y) + diff(Y, Z); the paper's |A−B| lower bound is not
	// needed for ranking, so the conservative upper bound is stored.
	sampledSet := make(map[string]bool, len(meas))
	for _, pm := range meas {
		sampledSet[pm.Partner] = true
	}
	for _, otherID := range s.order {
		if sampledSet[otherID] {
			continue
		}
		other := s.entries[otherID]
		best := -1.0
		for _, pm := range meas {
			dNewY, ok := rec.measured[pm.Partner]
			if !ok {
				continue
			}
			dYZ, ok := s.entries[pm.Partner].measured[otherID]
			if !ok {
				continue
			}
			if lvl := 1 - (dNewY + dYZ); lvl > best {
				best = lvl
			}
		}
		if best > 0 {
			rec.candidates = insertSorted(rec.candidates, Candidate{
				ID: otherID, Level: best, Kind: KindWhole, Derived: true,
			})
			other.candidates = insertSorted(other.candidates, Candidate{
				ID: e.ID, Level: best, Kind: KindWhole, Derived: true,
			})
			rec.measured[otherID] = 1 - best
			other.measured[e.ID] = 1 - best
		}
	}

	s.entries[e.ID] = rec
	s.byFP[rec.fingerprint] = e.ID
	s.order = append(s.order, e.ID)
	return nil
}

func insertSorted(list []Candidate, c Candidate) []Candidate {
	// Replace an existing record for the same (ID, Kind, Segment) if
	// the new level is better.
	for i, old := range list {
		if old.ID == c.ID && old.Kind == c.Kind && old.Segment == c.Segment {
			if c.Level <= old.Level {
				return list
			}
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	pos := sort.Search(len(list), func(i int) bool { return list[i].Level < c.Level })
	list = append(list, Candidate{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	return list
}

// InsertPrecomputed bulk-loads candidate records for an already indexed
// model, bypassing pairwise analysis. It serves two purposes: importing
// designer annotations (§5.5) and populating index-structure benchmarks
// at 100K-record scale, where per-record sorted insertion would be
// quadratic. Records are sorted descending and replace the existing list
// merged with it.
func (s *SemanticIndex) InsertPrecomputed(refID string, cands []Candidate) error {
	rec, ok := s.entries[refID]
	if !ok {
		return fmt.Errorf("index: model %q is not indexed", refID)
	}
	merged := append(append([]Candidate(nil), rec.candidates...), cands...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Level > merged[j].Level })
	rec.candidates = merged
	return nil
}

// Lookup returns, in descending level order, all candidates of the model
// identified by refID whose equivalence level meets the threshold.
func (s *SemanticIndex) Lookup(refID string, threshold float64) ([]Candidate, error) {
	rec, ok := s.entries[refID]
	if !ok {
		return nil, fmt.Errorf("index: model %q is not indexed", refID)
	}
	return cutAtThreshold(rec.candidates, threshold), nil
}

// cutAtThreshold returns a copy of the descending-sorted list's prefix
// at or above the threshold, binary-searching the cutoff.
func cutAtThreshold(list []Candidate, threshold float64) []Candidate {
	cut := sort.Search(len(list), func(i int) bool {
		return list[i].Level < threshold
	})
	if cut == 0 {
		return nil
	}
	return append([]Candidate(nil), list[:cut]...)
}

// LookupByFingerprint resolves a model fingerprint to its indexed ID —
// the paper's key calculation on query submission.
func (s *SemanticIndex) LookupByFingerprint(fp string) (string, bool) {
	id, ok := s.byFP[fp]
	return id, ok
}

// TopK returns the refID's K best candidates regardless of threshold.
func (s *SemanticIndex) TopK(refID string, k int) ([]Candidate, error) {
	rec, ok := s.entries[refID]
	if !ok {
		return nil, fmt.Errorf("index: model %q is not indexed", refID)
	}
	return topOf(rec.candidates, k), nil
}

// topOf copies the first k records of a descending-sorted list.
func topOf(list []Candidate, k int) []Candidate {
	if k > len(list) {
		k = len(list)
	}
	return append([]Candidate(nil), list[:k]...)
}

// MemoryBytes estimates the in-memory footprint of the semantic index:
// fingerprints, candidate records, and the measured-diff maps. Models
// themselves live in the repository, not here (§5.5, persistence).
func (s *SemanticIndex) MemoryBytes() int64 {
	var total int64
	for id, rec := range s.entries {
		total += int64(len(id)) + int64(len(rec.fingerprint)) + 48
		for _, c := range rec.candidates {
			total += int64(len(c.ID)+len(c.DonorID)+len(c.Segment)) + 40
		}
		total += int64(len(rec.measured)) * 56
	}
	return total
}
