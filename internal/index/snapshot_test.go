package index

import (
	"fmt"
	"testing"

	"sommelier/internal/graph"
	"sommelier/internal/resource"
)

func TestSemanticSnapshotRoundTrip(t *testing.T) {
	idx := NewSemanticIndex(1)
	tags := map[string]float64{"a": 0, "b": 0.1, "c": 0.3}
	an := &stubAnalyzer{tag: tags}
	models := map[string]*graph.Model{}
	for i, id := range []string{"a", "b", "c"} {
		m := tinyModel(t, uint64(i+1))
		models[id] = m
		if err := idx.Insert(Entry{ID: id, Model: m}, an); err != nil {
			t.Fatal(err)
		}
	}
	snap := idx.Snapshot()
	if len(snap.Entries) != 3 || snap.SampleSize != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}

	restored := NewSemanticIndex(9)
	resolve := func(id string) (*graph.Model, error) {
		m, ok := models[id]
		if !ok {
			return nil, fmt.Errorf("missing %q", id)
		}
		return m, nil
	}
	if err := restored.Restore(snap, resolve); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		orig, err := idx.Lookup(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Lookup(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(orig) != len(got) {
			t.Fatalf("%s: candidate counts %d vs %d", id, len(orig), len(got))
		}
		for i := range orig {
			if orig[i] != got[i] {
				t.Fatalf("%s: candidate %d differs", id, i)
			}
		}
	}
	// Fingerprint mapping survives.
	if id, ok := restored.LookupByFingerprint(models["a"].Fingerprint()); !ok || id != "a" {
		t.Fatal("fingerprint mapping lost")
	}
	// Post-restore insertion can measure against restored entries.
	if err := restored.Insert(Entry{ID: "d", Model: tinyModel(t, 44)}, an); err != nil {
		t.Fatal(err)
	}
}

func TestSemanticRestoreRejectsBadSnapshots(t *testing.T) {
	idx := NewSemanticIndex(1)
	if err := idx.Restore(SemanticSnapshot{Entries: []SemanticEntrySnapshot{{ID: ""}}}, nil); err == nil {
		t.Fatal("expected empty-ID error")
	}
	if err := idx.Restore(SemanticSnapshot{Entries: []SemanticEntrySnapshot{
		{ID: "x", Fingerprint: "f1"}, {ID: "x", Fingerprint: "f2"},
	}}, nil); err == nil {
		t.Fatal("expected duplicate error")
	}
	failing := func(string) (*graph.Model, error) { return nil, fmt.Errorf("boom") }
	if err := idx.Restore(SemanticSnapshot{Entries: []SemanticEntrySnapshot{
		{ID: "x", Fingerprint: "f"},
	}}, failing); err == nil {
		t.Fatal("expected resolve error")
	}
}

func TestResourceSnapshotRoundTrip(t *testing.T) {
	ri := NewResourceIndex(2)
	for i := 0; i < 20; i++ {
		p := resource.Profile{FLOPs: int64(i + 1), MemoryBytes: int64(100 * (i + 1)), LatencyMS: float64(i)}
		if err := ri.Insert(fmt.Sprintf("m%d", i), p); err != nil {
			t.Fatal(err)
		}
	}
	snap := ri.Snapshot()
	restored := NewResourceIndex(7)
	// Pre-populate to verify Restore replaces contents.
	restored.Insert("stale", resource.Profile{FLOPs: 1})
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 20 {
		t.Fatalf("restored %d profiles", restored.Len())
	}
	if _, ok := restored.Profile("stale"); ok {
		t.Fatal("restore kept stale entry")
	}
	b := Budget{MaxFLOPs: 10}
	if got := restored.CandidatesExact(b); len(got) != 10 {
		t.Fatalf("restored budget filter = %d matches", len(got))
	}
}
