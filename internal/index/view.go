package index

import (
	"fmt"

	"sommelier/internal/lsh"
	"sommelier/internal/resource"
)

// Views are immutable point-in-time copies of the two index structures,
// the read side of the catalog's copy-on-write snapshot scheme: the
// mutable SemanticIndex/ResourceIndex stay behind the writer lock, and
// each commit publishes a fresh view that any number of readers can
// query concurrently with zero locking. Candidate lists and profile
// maps are copied at view-build time because insertSorted and lsh
// bucket maintenance mutate their backing storage in place.

// SemanticView is an immutable view of a SemanticIndex.
type SemanticView struct {
	order      []string
	byFP       map[string]string
	candidates map[string][]Candidate
}

// View captures the semantic index's current state as an immutable view.
func (s *SemanticIndex) View() *SemanticView {
	v := &SemanticView{
		order:      append([]string(nil), s.order...),
		byFP:       make(map[string]string, len(s.byFP)),
		candidates: make(map[string][]Candidate, len(s.entries)),
	}
	for fp, id := range s.byFP {
		v.byFP[fp] = id
	}
	for id, rec := range s.entries {
		v.candidates[id] = append([]Candidate(nil), rec.candidates...)
	}
	return v
}

// Len returns the number of indexed models.
func (v *SemanticView) Len() int { return len(v.order) }

// Contains reports whether the model ID is indexed.
func (v *SemanticView) Contains(id string) bool {
	_, ok := v.candidates[id]
	return ok
}

// IDs returns the indexed model IDs in insertion order.
func (v *SemanticView) IDs() []string { return append([]string(nil), v.order...) }

// Lookup returns, in descending level order, all candidates of the model
// identified by refID whose equivalence level meets the threshold.
func (v *SemanticView) Lookup(refID string, threshold float64) ([]Candidate, error) {
	list, ok := v.candidates[refID]
	if !ok {
		return nil, fmt.Errorf("index: model %q is not indexed", refID)
	}
	return cutAtThreshold(list, threshold), nil
}

// TopK returns the refID's K best candidates regardless of threshold.
func (v *SemanticView) TopK(refID string, k int) ([]Candidate, error) {
	list, ok := v.candidates[refID]
	if !ok {
		return nil, fmt.Errorf("index: model %q is not indexed", refID)
	}
	return topOf(list, k), nil
}

// LookupByFingerprint resolves a model fingerprint to its indexed ID.
func (v *SemanticView) LookupByFingerprint(fp string) (string, bool) {
	id, ok := v.byFP[fp]
	return id, ok
}

// ResourceView is an immutable view of a ResourceIndex. It keeps its
// own clone of the LSH structure so the two-phase budget lookup (§5.3)
// stays available to lock-free readers.
type ResourceView struct {
	lsh      *lsh.Index
	profiles map[string]resource.Profile
}

// View captures the resource index's current state as an immutable view.
func (r *ResourceIndex) View() *ResourceView {
	v := &ResourceView{
		lsh:      r.lsh.Clone(),
		profiles: make(map[string]resource.Profile, len(r.profiles)),
	}
	for id, p := range r.profiles {
		v.profiles[id] = p
	}
	return v
}

// Len returns the number of indexed profiles.
func (v *ResourceView) Len() int { return len(v.profiles) }

// Profile returns the stored profile for id.
func (v *ResourceView) Profile(id string) (resource.Profile, bool) {
	p, ok := v.profiles[id]
	return p, ok
}

// Candidates returns the IDs whose profiles satisfy the budget,
// following the same two-phase LSH-probe-then-exact-check lookup as
// ResourceIndex.Candidates.
func (v *ResourceView) Candidates(b Budget, maxDist float64) ([]string, error) {
	return budgetCandidates(v.lsh, v.profiles, b, maxDist)
}

// CandidatesExact scans every profile — the ablation baseline.
func (v *ResourceView) CandidatesExact(b Budget) []string {
	return exactCandidates(v.profiles, b)
}
