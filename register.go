package sommelier

import (
	"context"
	"errors"
	"fmt"

	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/repo"
)

// ErrPublishedUnindexed is wrapped by Register when the model reached
// the repository but indexing failed AND the rollback delete also
// failed: the store now holds a model the engine does not know about.
// Callers can retry with IndexAll (which picks up unindexed repository
// models) or delete the ID themselves.
var ErrPublishedUnindexed = errors.New("model published but not indexed")

// RegisterContext publishes the model to the repository and indexes it.
// It returns the repository ID. Canceling ctx aborts the pairwise
// analysis before anything is committed to the index; the rollback
// below then removes the published model, so a canceled Register
// leaves no trace.
//
// Publish-then-index is not atomic; RegisterContext restores the
// invariant "published implies indexed" on failure by deleting what it
// just published. The rollback is skipped when the publish overwrote a
// pre-existing ID (deleting would destroy the prior version) or when a
// concurrent writer indexed the ID first (the model is in the index —
// just not through this call).
func (e *Engine) RegisterContext(ctx context.Context, m *graph.Model) (string, error) {
	var preexisted bool
	if m != nil {
		_, preexisted = e.store.Metadata(repo.IDFor(m))
	}
	id, err := e.store.Publish(m)
	if err != nil {
		return "", err
	}
	if err := e.cat.Index(ctx, id, m); err != nil {
		if errors.Is(err, index.ErrAlreadyIndexed) {
			return "", err
		}
		if preexisted {
			return "", err
		}
		if delErr := e.store.Delete(id); delErr != nil {
			return "", fmt.Errorf("sommelier: %w: %q: indexing failed (%w) and rollback failed (%w)",
				ErrPublishedUnindexed, id, err, delErr)
		}
		return "", err
	}
	return id, nil
}

// Register publishes and indexes the model without a context.
//
// Deprecated: use RegisterContext. This wrapper exists only so code
// written against the pre-context API keeps compiling; it cannot be
// canceled.
func (e *Engine) Register(m *graph.Model) (string, error) {
	return e.RegisterContext(context.Background(), m)
}

// RegisterAnnotatedContext publishes and indexes a model using
// designer-supplied equivalence annotations (§5.5, "Supporting
// developer annotations") instead of running the pairwise analysis
// against the annotated models: levels maps already-indexed model IDs
// to the functional-equivalence level the designer declares for them
// relative to this model. The declared levels are recorded
// symmetrically and commit atomically: a bad level or an unindexed
// reference applies no annotation edge at all. Models NOT covered by
// an annotation are still analyzed normally — annotations replace only
// the measurements they actually provide.
func (e *Engine) RegisterAnnotatedContext(ctx context.Context, m *graph.Model, levels map[string]float64) (string, error) {
	for id, lvl := range levels {
		if lvl < 0 || lvl > 1 {
			return "", fmt.Errorf("sommelier: annotation level %g for %q outside [0,1]", lvl, id)
		}
	}
	id, err := e.RegisterContext(ctx, m)
	if err != nil {
		return "", err
	}
	if err := e.cat.Annotate(id, levels); err != nil {
		return "", fmt.Errorf("sommelier: annotation references unindexed model: %w", err)
	}
	return id, nil
}

// RegisterAnnotated publishes and indexes a model with annotations,
// without a context.
//
// Deprecated: use RegisterAnnotatedContext.
func (e *Engine) RegisterAnnotated(m *graph.Model, levels map[string]float64) (string, error) {
	return e.RegisterAnnotatedContext(context.Background(), m, levels)
}

// IndexAllContext indexes every repository model not yet indexed, in
// repository order, fanning the pairwise analysis out across the
// engine's index workers. Models indexed concurrently by other writers
// are skipped, not errors. It returns on the first analysis or commit
// failure; models committed before the failure stay indexed.
//
// Canceling ctx drains the worker pool mid-batch and returns ctx.Err()
// with nothing committed: the batch commits only after its analysis
// completes.
func (e *Engine) IndexAllContext(ctx context.Context) error {
	snap := e.cat.Snapshot()
	var entries []index.Entry
	for _, md := range e.store.List() {
		if snap.Contains(md.ID) {
			continue
		}
		m, err := e.store.Load(md.ID)
		if err != nil {
			return err
		}
		entries = append(entries, index.Entry{ID: md.ID, Model: m})
	}
	_, err := e.cat.IndexBatch(ctx, entries)
	return err
}

// IndexAll indexes every unindexed repository model without a context.
//
// Deprecated: use IndexAllContext, whose cancellation aborts the
// worker pool mid-batch.
func (e *Engine) IndexAll() error {
	return e.IndexAllContext(context.Background())
}

// IndexModel indexes an already published model, skipping it silently
// if it is already indexed — the hook hub servers call after accepting
// an upload.
func (e *Engine) IndexModel(ctx context.Context, id string, m *graph.Model) error {
	if err := e.cat.Index(ctx, id, m); err != nil && !errors.Is(err, index.ErrAlreadyIndexed) {
		return err
	}
	return nil
}
