// Model design: the paper's second offline case study (§6). A designer
// wants a base model for a new downstream task. Instead of trial
// training runs on every plausible base, Sommelier's segment analysis
// picks the base whose trunk transfers best, and only the final head is
// trained — with real SGD, using internal/train.
package main

import (
	"fmt"
	"log"

	"sommelier"
	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/repo"
	"sommelier/internal/tensor"
	"sommelier/internal/train"
	"sommelier/internal/zoo"
)

func main() {
	store := repo.NewInMemory()
	eng, err := sommelier.New(store, sommelier.Options{
		Seed: 3, Segments: true, SegmentMinLen: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate bases in the repository: one well-trained family plus a
	// transfer variant that shares its trunk.
	base, err := zoo.DenseResidualNet(zoo.Config{
		Name: "pretrained-base", Seed: 1, InDim: 12, Classes: 6, Width: 24, Depth: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	cousin, err := zoo.Transfer(base, "community-finetune", 10, 99, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	baseID, err := eng.Register(base)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Register(cousin); err != nil {
		log.Fatal(err)
	}

	// The designer asks: which stored models share reusable structure
	// with my reference? Synthesized candidates expose the shared trunk.
	top, err := eng.TopEquivalents(baseID, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("equivalents of the reference (segment matches marked):")
	for _, r := range top {
		tag := "whole model"
		if r.Synthesized {
			tag = fmt.Sprintf("shared segment %s from %s", r.Segment, r.DonorID)
		}
		fmt.Printf("  %-24s level %.3f  (%s)\n", r.ID, r.Level, tag)
	}

	// Build the new downstream model: reuse the base's trunk verbatim,
	// attach a fresh head for a 4-class task, and fine-tune ONLY the
	// head on task data.
	newModel, frozen, err := reuseTrunk(base, 4)
	if err != nil {
		log.Fatal(err)
	}
	task := dataset.GaussianMixture("downstream-task", 400, 12, 4, 0.4, 7)
	trainSet, valSet := task.Split(0.8)
	examples := make([]train.Example, trainSet.Len())
	for i := range examples {
		examples[i] = train.Example{Input: trainSet.Inputs[i], Class: trainSet.Labels[i]}
	}
	before, err := accuracy(newModel, valSet)
	if err != nil {
		log.Fatal(err)
	}
	loss, err := train.SGD(newModel, examples, train.Config{
		Epochs: 40, LearningRate: 0.05, Loss: train.CrossEntropy,
		Frozen: frozen, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	after, err := accuracy(newModel, valSet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfine-tuned head only (trunk frozen): accuracy %.1f%% -> %.1f%% (loss %.3f)\n",
		before*100, after*100, loss)

	// Verify the trunk is still interchangeable with the base's — the
	// invariant that makes the reuse safe.
	pairs, err := equiv.CommonSegments(newModel, base, 3)
	if err != nil {
		log.Fatal(err)
	}
	if len(pairs) == 0 {
		log.Fatal("trunk no longer shared — freezing failed")
	}
	bound, err := equiv.PropagateBound(pairs[0], 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trunk still identical to the base's: propagated difference bound = %.2g\n", bound)
}

// reuseTrunk builds a sequential model that copies base's trunk weights
// (the layers before the head) and attaches a fresh classifier head.
// Residual blocks are not SGD-trainable in internal/train, so the trunk
// here is the pre-residual stem; the frozen set covers every copied
// layer.
func reuseTrunk(base *graph.Model, classes int) (*graph.Model, map[string]bool, error) {
	stemDense := base.Layer("Dense_1")
	if stemDense == nil {
		return nil, nil, fmt.Errorf("base has no stem dense layer")
	}
	width := stemDense.Attrs.Units
	b := graph.NewBuilder("downstream", graph.TaskClassification, base.InputShape.Clone(), nil)
	stem := b.Dense(width)
	b.ReLU()
	b.Dense(classes)
	b.Softmax()
	m, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	// Copy the stem weights verbatim.
	dst := m.Layer(stem)
	for name, p := range stemDense.Params {
		dst.Params[name] = p.Clone()
	}
	// Initialize the fresh head to small random values so training has
	// gradients to work with. (Builder layer names use a global
	// sequence: input, Dense_1, ReLU_2, Dense_3, Softmax_4.)
	head := m.Layer("Dense_3")
	rng := headInitRNG()
	rng.FillXavier(head.Params["W"])
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	return m, map[string]bool{stem: true}, nil
}

func headInitRNG() *tensor.RNG { return tensor.NewRNG(17) }

func accuracy(m *graph.Model, d *dataset.Dataset) (float64, error) {
	e, err := nn.NewExecutor(m)
	if err != nil {
		return 0, err
	}
	return dataset.Accuracy(e, d)
}
