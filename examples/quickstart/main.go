// Quickstart: build a small model repository, stand Sommelier up over
// it, and run the paper's canonical query — "find the model most
// interchangeable with this reference that uses less memory".
package main

import (
	"fmt"
	"log"

	"sommelier"
	"sommelier/internal/dataset"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

func main() {
	// 1. A bare-bone repository — the "remote filesystem" existing hubs
	//    provide (§2.1). Use repo.Open(dir) for a directory-backed one.
	store := repo.NewInMemory()

	// 2. The Sommelier engine interposes on it (Figure 1).
	eng, err := sommelier.New(store, sommelier.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Publish a reference model and some variants. Register both
	//    stores the model and builds its semantic + resource index
	//    entries (§5.2, §5.3).
	base, err := zoo.DenseResidualNet(zoo.Config{
		Name: "resnet50ish", Seed: 1, InDim: 16, Classes: 8, Width: 32, Depth: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	refID, err := eng.Register(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered reference %s (%d parameters)\n", refID, base.ParamCount())

	probes := dataset.RandomImages(300, base.InputShape, 2)
	for i, target := range []float64{0.03, 0.08, 0.15} {
		variant, achieved, err := zoo.CalibratedVariant(base,
			fmt.Sprintf("variant-%d", i), target, probes, uint64(10+i))
		if err != nil {
			log.Fatal(err)
		}
		id, err := eng.Register(variant)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %-12s (disagrees with reference on %.1f%% of inputs)\n",
			id, achieved*100)
	}
	// A wider (more expensive) sibling that behaves almost identically.
	big, err := zoo.Inflate(base, "resnet50ish-wide", 32, 96, 3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Register(big); err != nil {
		log.Fatal(err)
	}

	// 4. Query in the Figure 7 syntax: at least 85% interchangeable with
	//    the reference, at most its memory footprint, most similar first.
	q := fmt.Sprintf(`SELECT CORR %q WITHIN 85%% ON memory <= 100%% PICK most_similar`, refID)
	fmt.Printf("\nquery: %s\n\n", q)
	results, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		fmt.Println("no model satisfies the query")
		return
	}
	fmt.Printf("%-18s %-8s %-12s %-10s\n", "MODEL", "LEVEL", "MEMORY(MB)", "GFLOPS")
	for _, r := range results {
		v := r.Profile.Vector()
		fmt.Printf("%-18s %-8.3f %-12.4f %-10.5f\n", r.ID, r.Level, v[0], v[1])
	}

	// 5. Materialize and use the winner.
	best, err := eng.Materialize(results[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected %s: %d parameters, ready to serve\n", best.Name, best.ParamCount())

	// 6. Ask WHY: the explanation shows what each pipeline stage did
	//    (Sommelier as an "explanation database for DNNs").
	exp, err := eng.Explain(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", exp)
}
