// Serving: the paper's online case study (§6, Figure 8 left). An
// inference server checks its execution environment and, instead of a
// hardcoded model ladder, asks Sommelier for the best model fitting the
// current resource conditions — automatic model switching.
package main

import (
	"fmt"
	"log"
	"sort"

	"sommelier"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/nn"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
	"sommelier/internal/serving"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

func main() {
	// Build the repository: a flagship model and a ladder of compact
	// functional equivalents at genuinely smaller widths.
	store := repo.NewInMemory()
	// Testing-only scoring (bound off) keeps levels ordered purely by
	// measured interchangeability, which reads better in a demo; see
	// the ablation benches for what the bound adds.
	eng, err := sommelier.New(store, sommelier.Options{Seed: 7, Bound: equiv.BoundOff})
	if err != nil {
		log.Fatal(err)
	}
	teacher, err := zoo.DenseResidualNet(zoo.Config{
		Name: "task-teacher", Seed: 1, InDim: 16, Classes: 8, Width: 32, Depth: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ladder, err := zoo.SizeLadder("prod", teacher, 32,
		[]int{32, 64, 128, 256}, []float64{0.06, 0.04, 0.03, 0.02}, 2)
	if err != nil {
		log.Fatal(err)
	}
	flagship := ladder[len(ladder)-1]
	flagID, err := eng.Register(flagship)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range ladder[:len(ladder)-1] {
		if _, err := eng.Register(m); err != nil {
			log.Fatal(err)
		}
	}

	// The server's inner loop (Figure 8): on changing machine
	// conditions, formulate a query from the current resource quota and
	// switch to whatever Sommelier returns.
	fmt.Println("simulating a server adapting to its memory quota:")
	input := tensor.New(16)
	tensor.NewRNG(9).FillNormal(input, 0, 1)
	for _, quota := range []int{100, 50, 10, 2} { // % of flagship memory
		q := fmt.Sprintf(`SELECT CORR %q WITHIN 80%% ON memory <= %d%% PICK most_similar LIMIT 1`,
			flagID, quota)
		results, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(results) == 0 {
			fmt.Printf("  quota %3d%%: no model fits — keep the current one\n", quota)
			continue
		}
		m, err := eng.Materialize(results[0])
		if err != nil {
			log.Fatal(err)
		}
		cls, err := mustExecutor(m).Predict(input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  quota %3d%%: switched to %-12s (level %.3f, %7d params) -> class %d\n",
			quota, results[0].ID, results[0].Level, m.ParamCount(), cls)
	}

	// End-to-end effect on tail latency: replay a bursty trace under the
	// fixed baseline vs Sommelier-driven switching (Figure 9(c)).
	// Service times are FLOPs-proportional with the flagship at 20 ms.
	results, err := eng.Query(fmt.Sprintf(`SELECT CORR %q WITHIN 60%% PICK most_similar`, flagID))
	if err != nil {
		log.Fatal(err)
	}
	flagProf, err := resource.NewProfiler(nil).Measure(flagship)
	if err != nil {
		log.Fatal(err)
	}
	candidates := []serving.ModelChoice{{ID: flagID, ServiceMS: 20, Level: 1}}
	for _, r := range results {
		candidates = append(candidates, serving.ModelChoice{
			ID:        r.ID,
			ServiceMS: 20 * float64(r.Profile.FLOPs) / float64(flagProf.FLOPs),
			Level:     r.Level,
		})
	}
	// The switching policy steps down the list as queues grow, so order
	// candidates from most to least expensive.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ServiceMS > candidates[j].ServiceMS })

	w := serving.Workload{
		Requests: 10000, MeanArrivalMS: 26,
		BurstEvery: 400, BurstLen: 80, BurstFactor: 3.5, Seed: 3,
	}
	cmp, err := serving.RunComparison(w, candidates, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntail latency over a bursty trace (ms):")
	for _, r := range []serving.Result{cmp.Baseline, cmp.Switching} {
		s := r.Summary()
		fmt.Printf("  %-22s p50 %7.1f   p90 %7.1f   p99 %7.1f   mean-level %.3f\n",
			r.PolicyName, s.P50, s.P90, s.P99, r.MeanLevel)
	}
}

func mustExecutor(m *graph.Model) *nn.Executor {
	e, err := nn.NewExecutor(m)
	if err != nil {
		log.Fatal(err)
	}
	return e
}
