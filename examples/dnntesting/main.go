// DNN testing: the paper's offline case study (§6, Figure 8 right). A
// model arrives for robustness testing; the pipeline queries Sommelier
// for N functionally equivalent variants and uses them as an adversarial
// input detector — inputs on which the variants disagree with the tested
// model sit near its decision boundary (the DeepXplore recipe, §2).
package main

import (
	"fmt"
	"log"

	"sommelier"
	"sommelier/internal/dataset"
	"sommelier/internal/nn"
	"sommelier/internal/repo"
	"sommelier/internal/tensor"
	"sommelier/internal/zoo"
)

func main() {
	store := repo.NewInMemory()
	eng, err := sommelier.New(store, sommelier.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Populate the repository with a family of related models.
	tested, err := zoo.DenseResidualNet(zoo.Config{
		Name: "under-test", Seed: 1, InDim: 16, Classes: 8, Width: 32, Depth: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	testedID, err := eng.Register(tested)
	if err != nil {
		log.Fatal(err)
	}
	probes := dataset.RandomImages(300, tested.InputShape, 2)
	for i := 0; i < 6; i++ {
		target := 0.04 + 0.03*float64(i)
		v, _, err := zoo.CalibratedVariant(tested, fmt.Sprintf("sibling-%d", i), target, probes, uint64(20+i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Register(v); err != nil {
			log.Fatal(err)
		}
	}

	// One query replaces the manual variant hunt: "similar but not
	// identical" models make the best detectors.
	const n = 3
	q := fmt.Sprintf(`SELECT CORR %q WITHIN 75%% PICK most_similar LIMIT %d`, testedID, n)
	fmt.Printf("query: %s\n\n", q)
	results, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	detectors := make([]*nn.Executor, 0, len(results))
	for _, r := range results {
		m, err := eng.Materialize(r)
		if err != nil {
			log.Fatal(err)
		}
		e, err := nn.NewExecutor(m)
		if err != nil {
			log.Fatal(err)
		}
		detectors = append(detectors, e)
		fmt.Printf("detector %-12s equivalence level %.3f\n", r.ID, r.Level)
	}

	// Scan random inputs: any disagreement between the tested model and
	// a detector flags a decision-boundary ("tricky") input.
	testedExec, err := nn.NewExecutor(tested)
	if err != nil {
		log.Fatal(err)
	}
	rng := tensor.NewRNG(99)
	flagged := 0
	const scans = 500
	var firstTricky *tensor.Tensor
	for i := 0; i < scans; i++ {
		x := tensor.New(16)
		rng.FillNormal(x, 0, 1)
		want, err := testedExec.Predict(x)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range detectors {
			got, err := d.Predict(x)
			if err != nil {
				log.Fatal(err)
			}
			if got != want {
				flagged++
				if firstTricky == nil {
					firstTricky = x
				}
				break
			}
		}
	}
	fmt.Printf("\nscanned %d random inputs, flagged %d (%.1f%%) as decision-boundary candidates\n",
		scans, flagged, 100*float64(flagged)/scans)
	if firstTricky != nil {
		out, err := testedExec.Forward(firstTricky)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("example tricky input: tested model's confidence on its own prediction is only %.2f\n",
			out.Max())
	}
}
