GO ?= go

.PHONY: build test race vet lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector — the concurrent
# breaker, LRU-cache and retry paths in internal/hub depend on it. The
# experiment-reproduction packages slow down ~10x under race, so the
# per-package timeout is raised above go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# lint runs sommlint, the repo's own analyzer suite (see DESIGN.md
# "Invariants and static enforcement"): lock-annotation discipline,
# snapshot immutability, determinism, context plumbing, and sentinel
# error comparison. Exit 1 means findings; use `-json` for tooling.
lint:
	$(GO) run ./cmd/sommlint ./...

# check is the CI gate: vet, then sommlint, then the race-detector run.
# lint sits before race because it is ~100x cheaper and catches the
# invariant violations race can only hope to trip over.
check: vet lint race

# bench runs the Go micro-benchmarks, then the serial-vs-parallel
# indexing benchmark and the query-latency benchmark, leaving their
# machine-readable results in BENCH_index.json and BENCH_query.json
# (query percentiles come from the query_*_ms histograms).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/sommbench -exp indexbench -index-out BENCH_index.json
	$(GO) run ./cmd/sommbench -exp querybench -query-out BENCH_query.json
