GO ?= go

.PHONY: build test race vet lint check bench benchdiff chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race runs the full suite under the race detector — the concurrent
# breaker, LRU-cache and retry paths in internal/hub depend on it. The
# experiment-reproduction packages slow down ~10x under race, so the
# per-package timeout is raised above go test's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# lint runs sommlint, the repo's own analyzer suite (see DESIGN.md
# "Invariants and static enforcement"): lock-annotation discipline,
# snapshot immutability, determinism, context plumbing, sentinel error
# comparison, plus the flow-sensitive checks (lockflow, leakcheck,
# errflow) — locks released on every path and never held across I/O,
# resources closed on every path, error chains wrapped with %w. Exit 1
# means findings; use `-json` for tooling and `//lint:ignore <analyzer>
# <reason>` for justified one-line suppressions.
lint:
	$(GO) run ./cmd/sommlint ./...

# check is the CI gate: vet, then sommlint, then the race-detector run,
# then the benchmark-baseline diff. lint sits before race because it is
# ~100x cheaper and catches the invariant violations race can only hope
# to trip over; benchdiff last because it only compares JSON already on
# disk (regenerate with `make bench` to compare fresh numbers).
check: vet lint race benchdiff

# bench runs the Go micro-benchmarks, then the serial-vs-parallel
# indexing benchmark, the query-latency benchmark, the cluster
# scatter-gather load harness, the content-addressed storage harness,
# and the serving-cluster matrix, leaving their machine-readable
# results in BENCH_index.json, BENCH_query.json, BENCH_cluster.json,
# BENCH_store.json and BENCH_serving.json (latency percentiles come
# from the *_ms histograms; the serving numbers are virtual-time and
# therefore exact — a p95 shift there is a semantic change, not noise).
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
	$(GO) run ./cmd/sommbench -exp indexbench -index-out BENCH_index.json
	$(GO) run ./cmd/sommbench -exp querybench -query-out BENCH_query.json
	$(GO) run ./cmd/sommbench -exp clusterbench -cluster-out BENCH_cluster.json
	$(GO) run ./cmd/sommbench -exp storebench -store-out BENCH_store.json
	$(GO) run ./cmd/sommbench -exp servebench -serving-out BENCH_serving.json

# benchdiff fails when a freshly generated BENCH_*.json shows a p95
# latency more than 20% (and more than a noise floor) worse than the
# committed baseline. Skips files with no committed baseline.
benchdiff:
	$(GO) run ./cmd/benchdiff

# chaos runs the seeded fault-schedule matrix under the race detector:
# every TestChaos* case in internal/cluster (replica kill mid-query,
# full shard loss, flake, slow-replica timeout, kill mid-upload and
# mid-rebalance, concurrent stress) plus the schedule-replay tests in
# internal/faults. -v prints per-schedule PASS/FAIL; every schedule is
# seed-programmed, so a failure reproduces byte-for-byte.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestSchedule|TestComposedFlakyStores' \
		./internal/cluster/ ./internal/faults/
