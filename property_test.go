package sommelier

import (
	"fmt"
	"testing"
	"testing/quick"

	"sommelier/internal/query"
)

// The engine's core contract, checked over generated queries: every
// returned result satisfies the semantic threshold AND every resource
// constraint, results are sorted by the PICK criterion, and LIMIT is
// respected. One shared engine keeps the property check fast.
func TestPropertyQueryContract(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	refProf, ok := eng.Profile(refID)
	if !ok {
		t.Fatal("reference profile missing")
	}

	picks := []query.PickKind{
		query.PickMostSimilar, query.PickSmallest,
		query.PickFastest, query.PickCheapest, query.PickAll,
	}
	f := func(thrRaw uint8, memRaw uint16, flopsRaw uint16, pickRaw, limRaw uint8) bool {
		threshold := float64(thrRaw%101) / 100
		memPct := 10 + float64(memRaw%400)
		flopsPct := 10 + float64(flopsRaw%400)
		pick := picks[int(pickRaw)%len(picks)]
		limit := int(limRaw % 5)

		q := &query.Query{
			Ref:       refID,
			Threshold: threshold,
			Constraints: []query.Constraint{
				{Metric: query.MetricMemory, Op: query.OpLE, Value: memPct, Unit: query.UnitRelative},
				{Metric: query.MetricFLOPs, Op: query.OpLE, Value: flopsPct, Unit: query.UnitRelative},
			},
			Pick:  pick,
			Limit: limit,
		}
		results, err := eng.QueryAST(q)
		if err != nil {
			t.Logf("query error: %v", err)
			return false
		}
		if limit > 0 && len(results) > limit {
			return false
		}
		memCap := memPct / 100 * float64(refProf.MemoryBytes)
		flopsCap := flopsPct / 100 * float64(refProf.FLOPs)
		for i, r := range results {
			if r.Level < threshold {
				return false
			}
			if float64(r.Profile.MemoryBytes) > memCap || float64(r.Profile.FLOPs) > flopsCap {
				return false
			}
			if i == 0 {
				continue
			}
			prev := results[i-1]
			switch pick {
			case query.PickMostSimilar, query.PickAll:
				if r.Level > prev.Level {
					return false
				}
			case query.PickSmallest:
				if r.Profile.MemoryBytes < prev.Profile.MemoryBytes {
					return false
				}
			case query.PickFastest:
				if r.Profile.LatencyMS < prev.Profile.LatencyMS {
					return false
				}
			case query.PickCheapest:
				if r.Profile.FLOPs < prev.Profile.FLOPs {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Query and QueryAST must agree for any round-trippable query string.
func TestPropertyQueryStringEquivalence(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	f := func(thrRaw uint8, memRaw uint16) bool {
		threshold := int(thrRaw % 101)
		memPct := 10 + int(memRaw%300)
		qs := fmt.Sprintf("SELECT CORR %q WITHIN %d%% ON memory <= %d%% PICK most_similar",
			refID, threshold, memPct)
		viaString, err := eng.Query(qs)
		if err != nil {
			return false
		}
		ast, err := query.Parse(qs)
		if err != nil {
			return false
		}
		viaAST, err := eng.QueryAST(ast)
		if err != nil {
			return false
		}
		if len(viaString) != len(viaAST) {
			return false
		}
		for i := range viaString {
			if viaString[i].ID != viaAST[i].ID || viaString[i].Level != viaAST[i].Level {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
