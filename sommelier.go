// Package sommelier is a from-scratch Go reproduction of "Sommelier:
// Curating DNN Models for the Masses" (SIGMOD 2022): an indexing and
// query system layered over bare-bone DNN model repositories.
//
// The Engine interposes between a model repository and applications
// (Figure 1 of the paper). Models registered with the engine are analyzed
// for pairwise functional equivalence (internal/equiv, §4), profiled for
// resource usage (internal/resource, §5.3), and organized into a semantic
// index and an LSH resource index (internal/index, §5.2–5.3), both owned
// by internal/catalog behind copy-on-write snapshots. Queries in the
// Figure 7 syntax are parsed (internal/query) and executed as a
// three-stage filter pipeline (§5.4): semantic filter → resource filter →
// final selection — every stage reading one consistent snapshot, with no
// locking against concurrent registration.
//
// A minimal session:
//
//	store := repo.NewInMemory()
//	eng, _ := sommelier.NewEngine(store, sommelier.WithSeed(7))
//	id, _ := eng.RegisterContext(ctx, model)
//	results, _ := eng.QueryContext(ctx, `SELECT CORR "`+id+`" WITHIN 90% ON memory <= 80% PICK most_similar`)
//
// The API is context-first: every entry point that can block — query,
// register, index — takes a ctx whose cancellation aborts the work,
// including the indexing worker pool mid-batch. The ctx-less names
// (Query, Register, IndexAll, Explain) remain as deprecated wrappers
// over context.Background() at this package boundary only. The engine
// observes itself through internal/obs (see Engine.Observer): per-stage
// index and query timings, spans, and worker occupancy, exported as one
// JSON snapshot.
//
// The Engine itself is a thin facade: engine.go holds construction and
// accessors (options.go the functional options), register.go the write
// path (publish + staged indexing), querying.go the read path.
package sommelier

import (
	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/resource"
)

// Options configures an Engine (§5.5's knobs).
//
// Deprecated: use NewEngine with functional options (WithSeed,
// WithIndexWorkers, WithObserver, …). The struct is kept as a
// convertible compatibility shim; its field set is frozen — sommlint's
// optcheck rejects new fields — so new knobs appear only as Options
// funcs.
type Options struct {
	// Seed drives every random choice; equal seeds give identical
	// indexes and results, at any IndexWorkers setting.
	Seed uint64
	// ValidationSize is the per-task probe dataset size used for
	// empirical equivalence measurement (default 300).
	ValidationSize int
	// Bound selects the generalization-bound mode: on (default) for
	// dataset-independent scores, off for testing-only scores.
	Bound equiv.BoundMode
	// Segments enables model-segment analysis during indexing; it is
	// the slower, higher-recall mode (§4.2). Off by default.
	Segments bool
	// SegmentMinLen is the minimum common-segment length considered.
	SegmentMinLen int
	// SampleSize overrides the semantic index's pairwise sample count
	// (the paper uses 5).
	SampleSize int
	// IndexWorkers bounds the indexing pipeline's concurrency: how
	// many pairwise analyses and profile measurements run at once
	// during Register and IndexAll. Zero means runtime.GOMAXPROCS(0).
	// The worker count never changes indexing results — only how fast
	// they arrive.
	IndexWorkers int
	// LatencyTable overrides the per-operator latency table.
	LatencyTable resource.LatencyTable
	// CustomValidation, when set, is used instead of generated probe
	// data for models whose input shape matches (the "custom" bound
	// knob of §5.5).
	CustomValidation *dataset.Dataset
}

// Result is one model returned by a query, with everything an inference
// server needs to act on it.
type Result struct {
	// ID is the repository ID; synthesized results carry the base
	// model's ID here and the donor in DonorID.
	ID string
	// Level is the functional-equivalence level to the reference.
	Level float64
	// Synthesized marks segment-replacement candidates (§5.2).
	Synthesized bool
	DonorID     string
	Segment     string
	// Derived marks transitively derived (unmeasured) levels.
	Derived bool
	// Profile is the candidate's resource profile.
	Profile resource.Profile
}
