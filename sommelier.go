// Package sommelier is a from-scratch Go reproduction of "Sommelier:
// Curating DNN Models for the Masses" (SIGMOD 2022): an indexing and
// query system layered over bare-bone DNN model repositories.
//
// The Engine interposes between a model repository and applications
// (Figure 1 of the paper). Models registered with the engine are analyzed
// for pairwise functional equivalence (internal/equiv, §4), profiled for
// resource usage (internal/resource, §5.3), and organized into a semantic
// index and an LSH resource index (internal/index, §5.2–5.3). Queries in
// the Figure 7 syntax are parsed (internal/query) and executed as a
// three-stage filter pipeline (§5.4): semantic filter → resource filter →
// final selection.
//
// A minimal session:
//
//	store := repo.NewInMemory()
//	eng, _ := sommelier.New(store, sommelier.Options{})
//	id, _ := eng.Register(model)
//	results, _ := eng.Query(`SELECT CORR "` + id + `" WITHIN 90% ON memory <= 80% PICK most_similar`)
package sommelier

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/graph"
	"sommelier/internal/index"
	"sommelier/internal/query"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
)

// Options configures an Engine (§5.5's knobs).
type Options struct {
	// Seed drives every random choice; equal seeds give identical
	// indexes and results.
	Seed uint64
	// ValidationSize is the per-task probe dataset size used for
	// empirical equivalence measurement (default 300).
	ValidationSize int
	// Bound selects the generalization-bound mode: on (default) for
	// dataset-independent scores, off for testing-only scores.
	Bound equiv.BoundMode
	// Segments enables model-segment analysis during indexing; it is
	// the slower, higher-recall mode (§4.2). Off by default.
	Segments bool
	// SegmentMinLen is the minimum common-segment length considered.
	SegmentMinLen int
	// SampleSize overrides the semantic index's pairwise sample count
	// (the paper uses 5).
	SampleSize int
	// LatencyTable overrides the per-operator latency table.
	LatencyTable resource.LatencyTable
	// CustomValidation, when set, is used instead of generated probe
	// data for models whose input shape matches (the "custom" bound
	// knob of §5.5).
	CustomValidation *dataset.Dataset
}

func (o Options) validationSize() int {
	if o.ValidationSize <= 0 {
		return 300
	}
	return o.ValidationSize
}

// Result is one model returned by a query, with everything an inference
// server needs to act on it.
type Result struct {
	// ID is the repository ID; synthesized results carry the base
	// model's ID here and the donor in DonorID.
	ID string
	// Level is the functional-equivalence level to the reference.
	Level float64
	// Synthesized marks segment-replacement candidates (§5.2).
	Synthesized bool
	DonorID     string
	Segment     string
	// Derived marks transitively derived (unmeasured) levels.
	Derived bool
	// Profile is the candidate's resource profile.
	Profile resource.Profile
}

// Engine is the Sommelier query engine.
type Engine struct {
	opts Options

	mu       sync.RWMutex
	store    *repo.Repository
	sem      *index.SemanticIndex
	res      *index.ResourceIndex
	profiler *resource.Profiler
	// valSets caches one probe dataset per input-shape signature.
	valSets map[string]*dataset.Dataset
	// defaultRefs maps task categories to reference model IDs.
	defaultRefs map[string]string
	valSeed     uint64
}

// New creates an engine over an existing repository. Models already in
// the repository are NOT indexed automatically; call IndexAll or Register.
func New(store *repo.Repository, opts Options) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("sommelier: nil repository")
	}
	e := &Engine{
		opts:        opts,
		store:       store,
		sem:         index.NewSemanticIndex(opts.Seed + 1),
		res:         index.NewResourceIndex(opts.Seed + 2),
		profiler:    resource.NewProfiler(opts.LatencyTable),
		valSets:     make(map[string]*dataset.Dataset),
		defaultRefs: make(map[string]string),
		valSeed:     opts.Seed + 3,
	}
	if opts.SampleSize > 0 {
		e.sem.SampleSize = opts.SampleSize
	}
	return e, nil
}

// Store returns the underlying repository.
func (e *Engine) Store() *repo.Repository { return e.store }

// IndexedLen returns the number of indexed models.
func (e *Engine) IndexedLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sem.Len()
}

// Register publishes the model to the repository and indexes it. It
// returns the repository ID.
func (e *Engine) Register(m *graph.Model) (string, error) {
	id, err := e.store.Publish(m)
	if err != nil {
		return "", err
	}
	if err := e.indexModel(id, m); err != nil {
		return "", err
	}
	return id, nil
}

// RegisterAnnotated publishes and indexes a model using designer-supplied
// equivalence annotations (§5.5, "Supporting developer annotations")
// instead of running the pairwise analysis against the annotated models:
// levels maps already-indexed model IDs to the functional-equivalence
// level the designer declares for them relative to this model. The
// declared levels are recorded symmetrically. Models NOT covered by an
// annotation are still analyzed normally — annotations replace only the
// measurements they actually provide.
func (e *Engine) RegisterAnnotated(m *graph.Model, levels map[string]float64) (string, error) {
	for id, lvl := range levels {
		if lvl < 0 || lvl > 1 {
			return "", fmt.Errorf("sommelier: annotation level %g for %q outside [0,1]", lvl, id)
		}
	}
	id, err := e.Register(m)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var own []index.Candidate
	for otherID, lvl := range levels {
		if !e.sem.Contains(otherID) {
			return "", fmt.Errorf("sommelier: annotation references unindexed model %q", otherID)
		}
		own = append(own, index.Candidate{ID: otherID, Level: lvl, Kind: index.KindWhole})
		if err := e.sem.InsertPrecomputed(otherID, []index.Candidate{
			{ID: id, Level: lvl, Kind: index.KindWhole},
		}); err != nil {
			return "", err
		}
	}
	if len(own) > 0 {
		if err := e.sem.InsertPrecomputed(id, own); err != nil {
			return "", err
		}
	}
	return id, nil
}

// IndexAll indexes every repository model not yet indexed, in repository
// order.
func (e *Engine) IndexAll() error {
	for _, md := range e.store.List() {
		e.mu.RLock()
		have := e.sem.Contains(md.ID)
		e.mu.RUnlock()
		if have {
			continue
		}
		m, err := e.store.Load(md.ID)
		if err != nil {
			return err
		}
		if err := e.indexModel(md.ID, m); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) indexModel(id string, m *graph.Model) error {
	prof, err := e.profiler.Measure(m)
	if err != nil {
		return fmt.Errorf("sommelier: profiling %q: %w", id, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sem.Insert(index.Entry{ID: id, Model: m}, &pairAnalyzer{e: e}); err != nil {
		return err
	}
	if err := e.res.Insert(id, prof); err != nil {
		return err
	}
	// First model of a task category becomes its default reference.
	task := string(m.Task)
	if _, ok := e.defaultRefs[task]; !ok {
		e.defaultRefs[task] = id
	}
	return nil
}

// SetDefaultReference sets the reference model used when a query names a
// task category instead of a model (§5.1).
func (e *Engine) SetDefaultReference(task, id string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.sem.Contains(id) {
		return fmt.Errorf("sommelier: %q is not indexed", id)
	}
	e.defaultRefs[task] = id
	return nil
}

// validationFor returns (building if needed) the probe dataset for a
// model's input shape.
func (e *Engine) validationFor(m *graph.Model) *dataset.Dataset {
	if cv := e.opts.CustomValidation; cv != nil && cv.Len() > 0 &&
		cv.Inputs[0].Shape().Equal(m.InputShape) {
		return cv
	}
	key := m.InputShape.String()
	if d, ok := e.valSets[key]; ok {
		return d
	}
	d := &dataset.Dataset{
		Name:   "probe" + key,
		Inputs: dataset.RandomImages(e.opts.validationSize(), m.InputShape, e.valSeed),
	}
	e.valSets[key] = d
	return d
}

// pairAnalyzer adapts internal/equiv to the semantic index's Analyzer
// interface, measuring whole-model equivalence in both directions and —
// when enabled — segment-level replacements.
type pairAnalyzer struct{ e *Engine }

func (a *pairAnalyzer) Analyze(ref, cand index.Entry) (index.AnalysisResult, error) {
	e := a.e
	opts := equiv.Options{
		Epsilon: 1, // levels are recorded; thresholds apply at query time
		Bound:   e.opts.Bound,
		Seed:    e.opts.Seed,
	}
	val := e.validationFor(ref.Model)
	fwd, err := equiv.CheckWhole(ref.Model, cand.Model, val, opts)
	if err != nil {
		return index.AnalysisResult{}, err
	}
	valB := e.validationFor(cand.Model)
	rev, err := equiv.CheckWhole(cand.Model, ref.Model, valB, opts)
	if err != nil {
		return index.AnalysisResult{}, err
	}
	res := index.AnalysisResult{
		LevelForRef:  fwd.Score(),
		LevelForCand: rev.Score(),
	}
	if e.opts.Segments {
		res.SynthForRef, res.SynthForCand = a.segmentCandidates(ref, cand)
	}
	return res, nil
}

// segmentCandidates assesses segment replacements in both directions.
// Failures here degrade to "no synthesized candidates" rather than
// failing the insertion: segment analysis is a recall enhancement.
func (a *pairAnalyzer) segmentCandidates(ref, cand index.Entry) (forRef, forCand []index.Candidate) {
	e := a.e
	minLen := e.opts.SegmentMinLen
	if minLen <= 0 {
		minLen = 3
	}
	pairs, err := equiv.CommonSegments(ref.Model, cand.Model, minLen)
	if err != nil || len(pairs) == 0 {
		return nil, nil
	}
	eopts := equiv.Options{Epsilon: 0.1, Seed: e.opts.Seed, ProbeCount: 12}
	if r, err := equiv.AssessReplacement(ref.Model, pairs, eopts); err == nil && len(r.Kept) > 0 {
		forRef = append(forRef, index.Candidate{
			ID:      ref.ID,
			Level:   r.Level(),
			Kind:    index.KindSynthesized,
			DonorID: cand.ID,
			Segment: segmentLabel(r.Kept),
		})
	}
	// Reverse direction: segments of ref transplanted into cand.
	rev := make([]equiv.SegmentPair, len(pairs))
	for i, p := range pairs {
		rev[i] = equiv.SegmentPair{A: p.B, B: p.A}
	}
	if r, err := equiv.AssessReplacement(cand.Model, rev, eopts); err == nil && len(r.Kept) > 0 {
		forCand = append(forCand, index.Candidate{
			ID:      cand.ID,
			Level:   r.Level(),
			Kind:    index.KindSynthesized,
			DonorID: ref.ID,
			Segment: segmentLabel(r.Kept),
		})
	}
	return forRef, forCand
}

func segmentLabel(pairs []equiv.SegmentPair) string {
	if len(pairs) == 0 {
		return ""
	}
	s := pairs[0].A
	label := fmt.Sprintf("%s..%s", s.First(), s.Last())
	if len(pairs) > 1 {
		label += fmt.Sprintf("+%d", len(pairs)-1)
	}
	return label
}

// Query parses and executes a query string.
func (e *Engine) Query(q string) ([]Result, error) {
	ast, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return e.QueryAST(ast)
}

// QueryAST executes a parsed query through the three-stage pipeline.
func (e *Engine) QueryAST(q *query.Query) ([]Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	refID := q.Ref
	if refID == "" {
		id, ok := e.defaultRefs[q.Task]
		if !ok {
			return nil, fmt.Errorf("sommelier: no default reference for task %q", q.Task)
		}
		refID = id
	}
	if !e.sem.Contains(refID) {
		return nil, fmt.Errorf("sommelier: reference model %q is not indexed", refID)
	}
	refProf, ok := e.res.Profile(refID)
	if !ok {
		return nil, fmt.Errorf("sommelier: reference model %q has no resource profile", refID)
	}

	// Stage 1: semantic filter.
	cands, err := e.sem.Lookup(refID, q.Threshold)
	if err != nil {
		return nil, err
	}

	// An EXEC spec re-profiles models under the requested execution
	// setting (§5.3: batch size and precision shift real footprints);
	// without one, the indexed default-setting profiles apply.
	setting, reprofile, err := execSetting(q.Exec)
	if err != nil {
		return nil, err
	}
	profileOf := func(id string) (resource.Profile, error) {
		if !reprofile {
			p, _ := e.res.Profile(id)
			return p, nil
		}
		m, err := e.store.Load(id)
		if err != nil {
			return resource.Profile{}, err
		}
		return e.profiler.MeasureWith(m, setting)
	}
	if reprofile {
		if refProf, err = profileOf(refID); err != nil {
			return nil, err
		}
	}

	// Stage 2: resource filter. Build the absolute budget vector from
	// the constraints (relative values scale the reference profile),
	// retrieve profile-feasible IDs via the LSH index, and intersect.
	// Under an EXEC spec the LSH prefilter is skipped — the indexed
	// vectors describe the default setting — and the exact per-candidate
	// check below is authoritative.
	budget, err := budgetFrom(q.Constraints, refProf)
	if err != nil {
		return nil, err
	}
	feasible := make(map[string]bool)
	if len(q.Constraints) == 0 || reprofile {
		for _, c := range cands {
			feasible[candProfileID(c)] = true
		}
	} else {
		ids, err := e.res.Candidates(budget, 0)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			feasible[id] = true
		}
	}

	var results []Result
	for _, c := range cands {
		pid := candProfileID(c)
		if !feasible[pid] {
			continue
		}
		prof, err := profileOf(pid)
		if err != nil {
			return nil, err
		}
		if !exactlySatisfies(q.Constraints, prof, refProf) {
			continue
		}
		results = append(results, Result{
			ID:          pid,
			Level:       c.Level,
			Synthesized: c.Kind == index.KindSynthesized,
			DonorID:     c.DonorID,
			Segment:     c.Segment,
			Derived:     c.Derived,
			Profile:     prof,
		})
	}

	// Stage 3: final selection.
	sortResults(results, q.Pick)
	if q.Limit > 0 && len(results) > q.Limit {
		results = results[:q.Limit]
	}
	return results, nil
}

// candProfileID returns the ID whose resource profile represents the
// candidate: synthesized models share their base's architecture, hence
// its profile.
func candProfileID(c index.Candidate) string { return c.ID }

// execSetting translates a query's EXEC spec into a resource execution
// setting. Recognized keys: batch (int), precision (fp16|fp32),
// overhead (fraction). Unknown keys are ignored so serving systems can
// pass opaque hints through.
func execSetting(exec map[string]string) (resource.ExecSetting, bool, error) {
	if len(exec) == 0 {
		return resource.ExecSetting{}, false, nil
	}
	s := resource.DefaultSetting()
	s.Name = "exec-spec"
	used := false
	if v, ok := exec["batch"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return s, false, fmt.Errorf("sommelier: bad EXEC batch %q", v)
		}
		s.BatchSize = n
		used = true
	}
	if v, ok := exec["precision"]; ok {
		switch v {
		case "fp16":
			s.ActivationBytes = 2
		case "fp32":
			s.ActivationBytes = 4
		default:
			return s, false, fmt.Errorf("sommelier: bad EXEC precision %q", v)
		}
		used = true
	}
	if v, ok := exec["overhead"]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return s, false, fmt.Errorf("sommelier: bad EXEC overhead %q", v)
		}
		s.RuntimeOverhead = f
		used = true
	}
	return s, used, nil
}

// budgetFrom converts upper-bound constraints into an absolute Budget.
func budgetFrom(cs []query.Constraint, ref resource.Profile) (index.Budget, error) {
	var b index.Budget
	for _, c := range cs {
		if c.Op == query.OpGT || c.Op == query.OpGE {
			continue // lower bounds are enforced by exactlySatisfies
		}
		v, err := absoluteValue(c, ref)
		if err != nil {
			return b, err
		}
		switch c.Metric {
		case query.MetricMemory:
			b.MaxMemoryBytes = int64(v)
		case query.MetricFLOPs:
			b.MaxFLOPs = int64(v)
		case query.MetricLatency:
			b.MaxLatencyMS = v
		}
	}
	return b, nil
}

// absoluteValue resolves a constraint to the metric's native unit
// (bytes, FLOPs, milliseconds).
func absoluteValue(c query.Constraint, ref resource.Profile) (float64, error) {
	if c.Relative() {
		frac := c.Value / 100
		switch c.Metric {
		case query.MetricMemory:
			return frac * float64(ref.MemoryBytes), nil
		case query.MetricFLOPs:
			return frac * float64(ref.FLOPs), nil
		case query.MetricLatency:
			return frac * ref.LatencyMS, nil
		}
	}
	switch c.Unit {
	case query.UnitMB:
		return c.Value * (1 << 20), nil
	case query.UnitGB:
		return c.Value * (1 << 30), nil
	case query.UnitGFLOPs:
		return c.Value * 1e9, nil
	case query.UnitTFLOPs:
		return c.Value * 1e12, nil
	case query.UnitMS, query.UnitNone:
		return c.Value, nil
	}
	return 0, fmt.Errorf("sommelier: cannot resolve constraint %s", c)
}

// exactlySatisfies re-checks every constraint (including lower bounds and
// strict inequalities) against a candidate profile.
func exactlySatisfies(cs []query.Constraint, p, ref resource.Profile) bool {
	for _, c := range cs {
		limit, err := absoluteValue(c, ref)
		if err != nil {
			return false
		}
		var v float64
		switch c.Metric {
		case query.MetricMemory:
			v = float64(p.MemoryBytes)
		case query.MetricFLOPs:
			v = float64(p.FLOPs)
		case query.MetricLatency:
			v = p.LatencyMS
		}
		switch c.Op {
		case query.OpLT:
			if !(v < limit) {
				return false
			}
		case query.OpLE:
			if !(v <= limit) {
				return false
			}
		case query.OpGT:
			if !(v > limit) {
				return false
			}
		case query.OpGE:
			if !(v >= limit) {
				return false
			}
		case query.OpEQ:
			// Equality on continuous profiles means "within 5%".
			if v < limit*0.95 || v > limit*1.05 {
				return false
			}
		}
	}
	return true
}

func sortResults(rs []Result, pick query.PickKind) {
	less := func(i, j int) bool { return rs[i].Level > rs[j].Level }
	switch pick {
	case query.PickSmallest:
		less = func(i, j int) bool { return rs[i].Profile.MemoryBytes < rs[j].Profile.MemoryBytes }
	case query.PickFastest:
		less = func(i, j int) bool { return rs[i].Profile.LatencyMS < rs[j].Profile.LatencyMS }
	case query.PickCheapest:
		less = func(i, j int) bool { return rs[i].Profile.FLOPs < rs[j].Profile.FLOPs }
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if less(i, j) {
			return true
		}
		if less(j, i) {
			return false
		}
		return rs[i].ID < rs[j].ID // deterministic tie-break
	})
}

// Materialize loads the concrete model for a result. Synthesized results
// are built on demand by transplanting the donor segment (§5.2 lookup
// case (ii)).
func (e *Engine) Materialize(r Result) (*graph.Model, error) {
	base, err := e.store.Load(r.ID)
	if err != nil {
		return nil, err
	}
	if !r.Synthesized {
		return base, nil
	}
	donor, err := e.store.Load(r.DonorID)
	if err != nil {
		return nil, err
	}
	minLen := e.opts.SegmentMinLen
	if minLen <= 0 {
		minLen = 3
	}
	pairs, err := equiv.CommonSegments(base, donor, minLen)
	if err != nil {
		return nil, err
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("sommelier: synthesized segments no longer present between %q and %q",
			r.ID, r.DonorID)
	}
	out := base
	for _, p := range pairs {
		p.A.Model = out
		twin, err := equiv.SynthesizeReplacement(out, p)
		if err != nil {
			return nil, err
		}
		out = twin
	}
	return out, nil
}

// IndexMemoryBytes reports the two indexes' in-memory footprints
// (semantic, resource) for the Table 4 experiment.
func (e *Engine) IndexMemoryBytes() (semantic, res int64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sem.MemoryBytes(), e.res.MemoryBytes()
}

// TopEquivalents returns the reference's K best semantic candidates — the
// primitive behind the DNN-testing case study and Figure 13.
func (e *Engine) TopEquivalents(refID string, k int) ([]Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cands, err := e.sem.TopK(refID, k)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(cands))
	for _, c := range cands {
		prof, _ := e.res.Profile(c.ID)
		out = append(out, Result{
			ID: c.ID, Level: c.Level,
			Synthesized: c.Kind == index.KindSynthesized,
			DonorID:     c.DonorID, Segment: c.Segment,
			Derived: c.Derived, Profile: prof,
		})
	}
	return out, nil
}
