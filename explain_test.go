package sommelier

import (
	"strings"
	"testing"
)

func TestExplainStages(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	exp, err := eng.Explain(`SELECT CORR "` + refID + `" WITHIN 85% ON memory <= 120% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Reference != refID {
		t.Fatalf("reference = %q", exp.Reference)
	}
	// 4 indexed candidates total: some pass the 85% threshold, the
	// distant variant does not.
	if exp.SemanticCandidates+exp.SemanticRejected != 4 {
		t.Fatalf("semantic accounting wrong: %d + %d", exp.SemanticCandidates, exp.SemanticRejected)
	}
	if exp.SemanticRejected == 0 {
		t.Fatal("the distant variant should fail the threshold")
	}
	// The inflated big model should be rejected by the memory budget —
	// if it survived the semantic stage.
	total := 0
	for _, n := range exp.ResourceRejected {
		total += n
	}
	if exp.Returned != len(exp.Results) {
		t.Fatalf("returned count mismatch: %d vs %d", exp.Returned, len(exp.Results))
	}
	// Results must agree with the plain Query path exactly.
	direct, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 85% ON memory <= 120% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(exp.Results) {
		t.Fatalf("Explain results diverge from Query: %d vs %d", len(exp.Results), len(direct))
	}
	for i := range direct {
		if direct[i].ID != exp.Results[i].ID {
			t.Fatalf("result %d: %q vs %q", i, direct[i].ID, exp.Results[i].ID)
		}
	}
	s := exp.String()
	for _, want := range []string{"stage 1", "stage 2", "stage 3", refID} {
		if !strings.Contains(s, want) {
			t.Fatalf("explanation missing %q:\n%s", want, s)
		}
	}
}

func TestExplainResourceRejections(t *testing.T) {
	eng, refID, _ := newEngineWithLadder(t, false)
	// A tiny memory budget rejects everything.
	exp, err := eng.Explain(`SELECT CORR "` + refID + `" WITHIN 10% ON memory <= 1% PICK most_similar`)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Returned != 0 {
		t.Fatalf("returned %d under impossible budget", exp.Returned)
	}
	rejected := 0
	for _, n := range exp.ResourceRejected {
		rejected += n
	}
	if rejected != exp.SemanticCandidates {
		t.Fatalf("every semantic survivor should be resource-rejected: %d vs %d",
			rejected, exp.SemanticCandidates)
	}
	if !strings.Contains(exp.String(), "rejected") {
		t.Fatal("explanation should list rejections")
	}
}

func TestExplainErrors(t *testing.T) {
	eng, _, _ := newEngineWithLadder(t, false)
	if _, err := eng.Explain(`garbage`); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := eng.Explain(`SELECT CORR ghost@1`); err == nil {
		t.Fatal("expected unknown-reference error")
	}
	if _, err := eng.Explain(`SELECT TASK nosuch`); err == nil {
		t.Fatal("expected no-default error")
	}
}
