// Command sommhub serves a model repository over HTTP with the bare-bone
// publish/load/list interface existing hubs expose (§2.1). Point the
// sommelier CLI at it with -hub to index a remote repository.
//
// The server is hardened for unattended operation: PUT bodies are
// size-capped, /v1/healthz reports liveness, header reads are bounded,
// and SIGINT/SIGTERM drain in-flight requests before exiting — a signal
// during the startup index cancels it mid-batch.
//
// With -index the hub maintains a Sommelier catalog of its own: the
// repository is indexed at startup (fanned out across -index-workers),
// every accepted upload is indexed before the PUT is acknowledged, and
// GET /v1/query answers Sommelier queries over the catalog.
//
// The hub is observable end to end: GET /v1/metrics returns one JSON
// snapshot unifying per-endpoint request counters and latency
// percentiles with the engine's indexing and query metrics, and with
// -trace GET /v1/tracez returns the recent index/query span ring.
//
//	sommhub -repo ./models -listen :8750 -seed-demo
//	sommhub -repo ./models -index -index-workers 8 -trace
//	sommelier -hub http://localhost:8750 -query '...'
//	curl localhost:8750/v1/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sommelier"
	"sommelier/internal/dataset"
	"sommelier/internal/hub"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

func main() {
	var (
		repoDir      = flag.String("repo", "", "repository directory (empty = in-memory)")
		listen       = flag.String("listen", ":8750", "listen address")
		seedDemo     = flag.Bool("seed-demo", false, "populate with a demo model family")
		seed         = flag.Uint64("seed", 7, "random seed for demo models")
		maxBodyMB    = flag.Int64("max-body-mb", 64, "PUT body size limit in MiB")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
		doIndex      = flag.Bool("index", false, "maintain a Sommelier catalog: index existing models at startup and every accepted upload")
		indexWorkers = flag.Int("index-workers", 0, "indexing concurrency (0 = GOMAXPROCS; needs -index)")
		trace        = flag.Bool("trace", false, "record index/query spans and serve them at /v1/tracez")
	)
	flag.Parse()

	var store *repo.Repository
	var err error
	if *repoDir == "" {
		store = repo.NewInMemory()
	} else if store, err = repo.Open(*repoDir); err != nil {
		fatal(err)
	}

	if *seedDemo {
		if err := seedModels(store, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("seeded %d demo models\n", store.Len())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One observer spans the whole process: HTTP endpoint metrics, the
	// engine's indexing/query metrics, and the span ring all land in the
	// same /v1/metrics snapshot.
	traceCap := 0
	if *trace {
		traceCap = obs.DefaultTraceCap
	}
	o := obs.New(obs.WithTraceCap(traceCap))

	opts := []hub.ServerOption{
		hub.WithMaxBodyBytes(*maxBodyMB << 20),
		hub.WithServerObserver(o),
	}
	if *doIndex {
		eng, err := sommelier.NewEngine(store,
			sommelier.WithSeed(*seed),
			sommelier.WithIndexWorkers(*indexWorkers),
			sommelier.WithObserver(o))
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if err := eng.IndexAllContext(ctx); err != nil {
			fatal(fmt.Errorf("indexing repository: %w", err))
		}
		fmt.Printf("indexed %d models in %s (%d workers)\n",
			eng.IndexedLen(), time.Since(start).Round(time.Millisecond), *indexWorkers)
		opts = append(opts,
			hub.WithIndexer(eng),
			hub.WithQuerier(func(ctx context.Context, q string) (any, error) {
				return eng.QueryContext(ctx, q)
			}))
	}
	srv, err := hub.NewServer(store, opts...)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("sommhub serving %d models on %s\n", store.Len(), *listen)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		fmt.Println("sommhub: draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		fmt.Println("sommhub: stopped cleanly")
	}
}

func seedModels(store *repo.Repository, seed uint64) error {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "hub-base", Seed: seed, Width: 32, Depth: 2})
	if err != nil {
		return err
	}
	if _, err := store.Publish(base); err != nil {
		return err
	}
	probes := dataset.RandomImages(300, base.InputShape, seed+1)
	for i, target := range []float64{0.03, 0.08, 0.15} {
		v, _, err := zoo.CalibratedVariant(base, fmt.Sprintf("hub-v%d", i), target, probes, seed+uint64(i)+2)
		if err != nil {
			return err
		}
		if _, err := store.Publish(v); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sommhub:", err)
	os.Exit(1)
}
