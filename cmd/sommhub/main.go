// Command sommhub serves a model repository over HTTP with the bare-bone
// publish/load/list interface existing hubs expose (§2.1). Point the
// sommelier CLI at it with -hub to index a remote repository.
//
// The server is hardened for unattended operation: PUT bodies are
// size-capped, /v1/healthz reports liveness, header reads are bounded,
// and SIGINT/SIGTERM drain in-flight requests before exiting — a signal
// during the startup index cancels it mid-batch.
//
// With -index the hub maintains a Sommelier catalog of its own: the
// repository is indexed at startup (fanned out across -index-workers),
// every accepted upload is indexed before the PUT is acknowledged, and
// GET /v1/query answers Sommelier queries over the catalog.
//
// The hub also scales out. Three cluster roles:
//
//   - Shard node: -shard I -shards N marks a standalone hub as shard I
//     of an N-shard cluster; /v1/healthz advertises the slot so a
//     coordinator can verify topology before routing traffic.
//   - In-process cluster: -shards N -replicas R (without -shard) runs N
//     shards × R engine-backed replicas inside one process behind a
//     consistent-hash ring. Writes replicate R ways, GET /v1/query
//     scatter-gathers across all shards with per-shard failover and the
//     degradation ladder (replica failover → stale last-known-good →
//     partial result); the query payload is the full cluster Response,
//     including any missing/stale shard tags.
//   - Coordinator: -coordinator "u1,u2;u3,u4" fronts remote shard hubs
//     (';' separates shards, ',' separates a shard's replicas, each
//     running with -index) with the same scatter-gather read path and
//     replicated write path.
//
// In the cluster roles, a PUT whose model metadata carries
// placement=broadcast is written to every shard — the placement for
// reference models all shards must be able to correlate against.
//
// The hub is observable end to end: GET /v1/metrics returns one JSON
// snapshot unifying per-endpoint request counters and latency
// percentiles with the engine's (or cluster's) metrics, and with
// -trace GET /v1/tracez returns the recent index/query span ring.
//
//	sommhub -repo ./models -listen :8750 -seed-demo
//	sommhub -repo ./models -index -index-workers 8 -trace
//	sommhub -shards 4 -replicas 2 -seed-demo          # in-process cluster
//	sommhub -coordinator "http://a:8750,http://b:8750;http://c:8750,http://d:8750"
//	sommelier -hub http://localhost:8750 -query '...'
//	curl localhost:8750/v1/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sommelier"
	"sommelier/internal/cluster"
	"sommelier/internal/dataset"
	"sommelier/internal/experiments"
	"sommelier/internal/graph"
	"sommelier/internal/hub"
	"sommelier/internal/obs"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

func main() {
	var (
		repoDir      = flag.String("repo", "", "repository directory (empty = in-memory; standalone mode only)")
		listen       = flag.String("listen", ":8750", "listen address")
		seedDemo     = flag.Bool("seed-demo", false, "populate with a demo model family")
		seed         = flag.Uint64("seed", 7, "random seed for demo models and cluster engines")
		maxBodyMB    = flag.Int64("max-body-mb", 64, "PUT body size limit in MiB")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain window")
		doIndex      = flag.Bool("index", false, "maintain a Sommelier catalog: index existing models at startup and every accepted upload")
		indexWorkers = flag.Int("index-workers", 0, "indexing concurrency (0 = GOMAXPROCS; needs -index)")
		trace        = flag.Bool("trace", false, "record index/query spans and serve them at /v1/tracez")
		shards       = flag.Int("shards", 0, "cluster shard count: with -shard, the advertised total; without, runs an in-process cluster of this many shards")
		replicas     = flag.Int("replicas", 2, "replicas per shard in in-process cluster mode")
		shardID      = flag.Int("shard", -1, "this hub's shard index (standalone shard node; needs -shards)")
		coordinator  = flag.String("coordinator", "", `front remote shard hubs: ';'-separated shards of ','-separated replica URLs`)
		validation   = flag.Int("validation", 64, "per-task probe dataset size for cluster-mode engines")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One observer spans the whole process: HTTP endpoint metrics, the
	// engine's (or cluster's) metrics, and the span ring all land in the
	// same /v1/metrics snapshot.
	traceCap := 0
	if *trace {
		traceCap = obs.DefaultTraceCap
	}
	o := obs.New(obs.WithTraceCap(traceCap))

	opts := []hub.ServerOption{
		hub.WithMaxBodyBytes(*maxBodyMB << 20),
		hub.WithServerObserver(o),
	}

	var srvStore hub.Store
	switch {
	case *coordinator != "":
		topo, err := parseCoordinatorTopology(*coordinator)
		if err != nil {
			fatal(err)
		}
		cl, co, err := buildCoordinator(topo, o)
		if err != nil {
			fatal(err)
		}
		srvStore = &clusterStore{cl: cl}
		opts = append(opts,
			hub.WithQuerier(func(ctx context.Context, q string) (any, error) {
				return co.Query(ctx, q)
			}),
			hub.WithBatchQuerier(coordinatorBatchQuerier(co)))
		fmt.Printf("sommhub coordinator over %d shard(s)\n", cl.Shards())

	case *shards > 1 && *shardID < 0:
		top := experiments.ClusterTopology{
			Shards: *shards, Replicas: *replicas,
			Seed: *seed, ValidationSize: *validation,
		}
		cl, co, err := experiments.BuildCluster(top, nil, o)
		if err != nil {
			fatal(err)
		}
		if *seedDemo {
			if _, _, err := experiments.SeedClusterModels(ctx, cl, 6, 16, 2, *seed); err != nil {
				fatal(err)
			}
		}
		srvStore = &clusterStore{cl: cl}
		opts = append(opts,
			hub.WithQuerier(func(ctx context.Context, q string) (any, error) {
				return co.Query(ctx, q)
			}),
			hub.WithBatchQuerier(coordinatorBatchQuerier(co)))
		fmt.Printf("sommhub in-process cluster: %d shards x %d replicas\n", *shards, *replicas)

	default:
		var store *repo.Repository
		var err error
		if *repoDir == "" {
			store = repo.NewInMemory()
		} else if store, err = repo.Open(*repoDir); err != nil {
			fatal(err)
		}
		if *seedDemo {
			if err := seedModels(store, *seed); err != nil {
				fatal(err)
			}
			fmt.Printf("seeded %d demo models\n", store.Len())
		}
		if *doIndex {
			eng, err := sommelier.NewEngine(store,
				sommelier.WithSeed(*seed),
				sommelier.WithIndexWorkers(*indexWorkers),
				sommelier.WithObserver(o))
			if err != nil {
				fatal(err)
			}
			start := time.Now()
			if err := eng.IndexAllContext(ctx); err != nil {
				fatal(fmt.Errorf("indexing repository: %w", err))
			}
			fmt.Printf("indexed %d models in %s (%d workers)\n",
				eng.IndexedLen(), time.Since(start).Round(time.Millisecond), *indexWorkers)
			opts = append(opts,
				hub.WithIndexer(eng),
				hub.WithQuerier(func(ctx context.Context, q string) (any, error) {
					return eng.QueryContext(ctx, q)
				}),
				hub.WithBatchQuerier(engineBatchQuerier(eng)))
		}
		if *shardID >= 0 {
			if *shards <= *shardID {
				fatal(fmt.Errorf("-shard %d needs -shards > %d", *shardID, *shardID))
			}
			opts = append(opts, hub.WithShardInfo(*shardID, *shards))
			fmt.Printf("sommhub shard %d of %d\n", *shardID, *shards)
		}
		srvStore = store
	}

	srv, err := hub.NewServer(srvStore, opts...)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("sommhub serving %d models on %s\n", srvStore.Len(), *listen)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		fmt.Println("sommhub: draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		fmt.Println("sommhub: stopped cleanly")
	}
}

// engineBatchQuerier adapts an engine's batched query path to the hub
// server's POST /v1/query. Unknown-reference failures carry the
// machine-readable code a cluster coordinator needs to treat a shard
// that simply lacks the reference as an empty contribution.
func engineBatchQuerier(eng *sommelier.Engine) hub.BatchQuerier {
	return func(ctx context.Context, qs []string) ([]any, []*hub.QueryError) {
		results, errs := eng.QueryBatchContext(ctx, qs)
		out := make([]any, len(qs))
		qerrs := make([]*hub.QueryError, len(qs))
		for i := range qs {
			if err := errs[i]; err != nil {
				qe := &hub.QueryError{Message: err.Error()}
				if errors.Is(err, sommelier.ErrUnknownReference) {
					qe.Code = hub.CodeUnknownReference
				}
				qerrs[i] = qe
				continue
			}
			out[i] = results[i]
		}
		return out, qerrs
	}
}

// coordinatorBatchQuerier adapts a cluster coordinator's batched
// scatter-gather to the hub server's POST /v1/query.
func coordinatorBatchQuerier(co *cluster.Coordinator) hub.BatchQuerier {
	return func(ctx context.Context, qs []string) ([]any, []*hub.QueryError) {
		responses, errs := co.QueryBatch(ctx, qs)
		out := make([]any, len(qs))
		qerrs := make([]*hub.QueryError, len(qs))
		for i := range qs {
			if err := errs[i]; err != nil {
				qerrs[i] = &hub.QueryError{Message: err.Error()}
				continue
			}
			out[i] = responses[i]
		}
		return out, qerrs
	}
}

// parseCoordinatorTopology parses "u1,u2;u3,u4" into per-shard replica
// URL lists.
func parseCoordinatorTopology(spec string) ([][]string, error) {
	var topo [][]string
	for i, shard := range strings.Split(spec, ";") {
		var urls []string
		for _, u := range strings.Split(shard, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			return nil, fmt.Errorf("-coordinator: shard %d has no replica URLs", i)
		}
		topo = append(topo, urls)
	}
	if len(topo) == 0 {
		return nil, fmt.Errorf("-coordinator: no shards in %q", spec)
	}
	return topo, nil
}

// buildCoordinator wires hub clients for every replica URL into a
// cluster and its scatter-gather coordinator.
func buildCoordinator(topo [][]string, o *obs.Observer) (*cluster.Cluster, *cluster.Coordinator, error) {
	reps := make([][]cluster.Replica, len(topo))
	for s, urls := range topo {
		for _, u := range urls {
			client, err := hub.NewClient(u, nil)
			if err != nil {
				return nil, nil, fmt.Errorf("shard %d replica %q: %w", s, u, err)
			}
			reps[s] = append(reps[s], cluster.NewHTTPReplica(client))
		}
	}
	cl, err := cluster.NewCluster(reps, cluster.WithClusterObserver(o))
	if err != nil {
		return nil, nil, err
	}
	co, err := cluster.NewCoordinator(cl.Backends(), cluster.WithCoordinatorObserver(o))
	if err != nil {
		return nil, nil, err
	}
	return cl, co, nil
}

// clusterStore adapts a Cluster to the hub server's Store surface, so
// the standard publish/load/list endpoints front the whole cluster. A
// model whose metadata carries placement=broadcast is written to every
// shard; everything else shards by the ring. Partial writes (some
// replicas down) are accepted — the model is durable and Repair heals
// the divergence — but logged.
type clusterStore struct {
	cl *cluster.Cluster
}

func (s *clusterStore) Publish(m *graph.Model) (string, error) {
	var id string
	var err error
	if m.Metadata != nil && m.Metadata["placement"] == "broadcast" {
		id, err = s.cl.Broadcast(context.Background(), m)
	} else {
		id, err = s.cl.Publish(context.Background(), m)
	}
	var pw *cluster.PartialWriteError
	if errors.As(err, &pw) {
		fmt.Fprintf(os.Stderr, "sommhub: accepted partial write: %v\n", pw)
		return id, nil
	}
	return id, err
}

func (s *clusterStore) Load(id string) (*graph.Model, error) {
	return s.cl.Load(context.Background(), id)
}

func (s *clusterStore) Delete(id string) error {
	return s.cl.Delete(context.Background(), id)
}

func (s *clusterStore) List() []repo.Metadata {
	mds, err := s.cl.List(context.Background())
	if err != nil {
		return nil
	}
	return mds
}

func (s *clusterStore) Metadata(id string) (repo.Metadata, bool) {
	for _, md := range s.List() {
		if md.ID == id {
			return md, true
		}
	}
	return repo.Metadata{}, false
}

func (s *clusterStore) Len() int { return len(s.List()) }

func seedModels(store *repo.Repository, seed uint64) error {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "hub-base", Seed: seed, Width: 32, Depth: 2})
	if err != nil {
		return err
	}
	if _, err := store.Publish(base); err != nil {
		return err
	}
	probes := dataset.RandomImages(300, base.InputShape, seed+1)
	for i, target := range []float64{0.03, 0.08, 0.15} {
		v, _, err := zoo.CalibratedVariant(base, fmt.Sprintf("hub-v%d", i), target, probes, seed+uint64(i)+2)
		if err != nil {
			return err
		}
		if _, err := store.Publish(v); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sommhub:", err)
	os.Exit(1)
}
