// Command servesim runs the inference-serving simulations: the
// single-server Figure 9(c) comparison (default), one multi-instance
// cluster scenario (-cluster), or the full policy × router × load
// scenario matrix (-matrix).
//
// The default mode prints latency percentiles and model shares for the
// four §7.1 configurations (fixed baseline, scale-out, Sommelier
// switching, combined); a switch-failure probability subjects the
// switching configurations to a fault model. Percentiles come from the
// observability layer: each configuration's latencies feed a
// serving_<policy>_latency_ms histogram and the table reads the
// histogram summaries — the same numbers -metrics exports as JSON.
//
// Cluster mode simulates N serving instances behind a router and a
// token-bucket admission controller on one shared virtual clock, with
// per-SLO-class percentiles, attainment and a Jain fairness index.
// Matrix mode sweeps {fixed, switching, slo} × {round-robin,
// least-loaded, affinity} × {steady, bursty} and prints one row per
// cell; the fixed/round-robin/steady cell at -instances 1 is exactly
// the single-server baseline experiment.
//
//	servesim -requests 50000 -arrival 22 -burst-factor 8
//	servesim -switch-fail 0.3            # re-examine Fig. 9(c) under faults
//	servesim -cluster -instances 4 -router affinity -admit-rate 300
//	servesim -cluster -trace-file trace.jsonl
//	servesim -matrix -instances 4 -requests 5000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sommelier/internal/faults"
	"sommelier/internal/obs"
	"sommelier/internal/serving"
	"sommelier/internal/serving/cluster"
)

func main() {
	var (
		requests    = flag.Int("requests", 20000, "number of inference requests")
		arrival     = flag.Float64("arrival", 26, "mean inter-arrival gap (ms)")
		burstEvery  = flag.Int("burst-every", 400, "inject a burst every N requests (0 = no bursts)")
		burstLen    = flag.Int("burst-len", 80, "requests per burst")
		burstFactor = flag.Float64("burst-factor", 3.5, "burst arrival-rate multiplier")
		switchStep  = flag.Int("switch-step", 4, "queue-length step between model downgrades")
		switchFail  = flag.Float64("switch-fail", 0, "probability a model switch fails (falls back to the deployed model)")
		seed        = flag.Uint64("seed", 1, "random seed")
		metrics     = flag.Bool("metrics", false, "print the observability snapshot as JSON after the run")
		trace       = flag.Bool("trace", false, "print the simulation span tree after the run")

		clusterMode = flag.Bool("cluster", false, "run one multi-instance cluster scenario")
		matrixMode  = flag.Bool("matrix", false, "run the policy x router x load scenario matrix")
		instances   = flag.Int("instances", 4, "serving instances (cluster/matrix modes)")
		routerName  = flag.String("router", "least-loaded", "router: round-robin, least-loaded, affinity")
		policyName  = flag.String("policy", "switching", "per-instance policy: fixed, switching, slo")
		sloTarget   = flag.Float64("slo-target", 40, "slo policy latency target (ms)")
		gammaShape  = flag.Float64("gamma-shape", 0, "inter-arrival Gamma shape (0 or 1 = Poisson)")
		zipfS       = flag.Float64("zipf", 1.1, "Zipf skew for model-series popularity (0 = uniform)")
		series      = flag.Int("series", 6, "number of model-family series in the workload")
		admitRate   = flag.Float64("admit-rate", 0, "token-bucket admission rate (req/s, 0 = admit all)")
		admitBurst  = flag.Float64("admit-burst", 50, "token-bucket burst size")
		traceFile   = flag.String("trace-file", "", "replay a JSONL trace ({\"at_ms\":..,\"class\":..,\"series\":..}) instead of generating")
		killInst    = flag.Int("kill-instance", -1, "instance to kill for ops [kill-from, kill-to)")
		killFrom    = flag.Int64("kill-from", 0, "first op of the kill window")
		killTo      = flag.Int64("kill-to", 0, "end of the kill window (exclusive)")
	)
	flag.Parse()

	// The candidate ladder Sommelier would return: flagship first, then
	// progressively compact functional equivalents.
	candidates := []serving.ModelChoice{
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.975},
		{ID: "compact", ServiceMS: 3, Level: 0.955},
		{ID: "tiny", ServiceMS: 1, Level: 0.93},
	}

	cc := clusterConfig{
		candidates: candidates,
		requests:   *requests,
		arrival:    *arrival,
		instances:  *instances,
		switchStep: *switchStep,
		switchFail: *switchFail,
		sloTarget:  *sloTarget,
		gammaShape: *gammaShape,
		zipfS:      *zipfS,
		series:     *series,
		admitRate:  *admitRate,
		admitBurst: *admitBurst,
		traceFile:  *traceFile,
		killInst:   *killInst,
		killFrom:   *killFrom,
		killTo:     *killTo,
		seed:       *seed,
	}
	switch {
	case *matrixMode:
		if err := runMatrix(cc); err != nil {
			fmt.Fprintln(os.Stderr, "servesim:", err)
			os.Exit(1)
		}
		return
	case *clusterMode:
		if err := runCluster(cc, *policyName, *routerName); err != nil {
			fmt.Fprintln(os.Stderr, "servesim:", err)
			os.Exit(1)
		}
		return
	}

	w := serving.Workload{
		Requests:      *requests,
		MeanArrivalMS: *arrival,
		BurstEvery:    *burstEvery,
		BurstLen:      *burstLen,
		BurstFactor:   *burstFactor,
		Seed:          *seed,
	}
	fm := serving.FailureModel{SwitchFailProb: *switchFail, Seed: *seed + 1}

	o := obs.New()
	ctx, root := o.StartSpan(context.Background(), "servesim", "")
	spanCtx, span := o.StartSpan(ctx, "comparison", fmt.Sprintf("%d requests", *requests))
	cmp, err := serving.RunComparisonContext(spanCtx, o, w, candidates, *switchStep, fm)
	span.End()
	root.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	}
	snap := o.Snapshot()
	histFor := func(r serving.Result) obs.HistSummary {
		return snap.Histograms["serving_"+serving.MetricName(r.PolicyName)+"_latency_ms"]
	}

	fmt.Printf("workload: %d requests, mean gap %.1fms, bursts x%.0f every %d", *requests, *arrival, *burstFactor, *burstEvery)
	if *switchFail > 0 {
		fmt.Printf(", switch failure p=%.2f", *switchFail)
	}
	fmt.Printf("\n\n")
	fmt.Printf("%-22s %8s %8s %8s %8s %11s %9s  %s\n",
		"CONFIGURATION", "P50", "P95", "P99", "MAX", "MEAN-LEVEL", "SW-FAIL", "MODEL SHARE")
	for _, r := range []serving.Result{cmp.Baseline, cmp.ScaleOut, cmp.Switching, cmp.Combined} {
		s := histFor(r)
		rep := serving.Degradation(r)
		fmt.Printf("%-22s %8.1f %8.1f %8.1f %8.1f %11.3f %4d/%-4d  %v\n",
			r.PolicyName, s.P50, s.P95, s.P99, s.Max, r.MeanLevel,
			rep.FailedSwitches, rep.SwitchAttempts, serving.SortedModelShare(r))
	}
	p95b := histFor(cmp.Baseline).P95
	p95s := histFor(cmp.Switching).P95
	p95o := histFor(cmp.ScaleOut).P95
	fmt.Printf("\np95 reduction vs baseline: switching %.1fx, scale-out %.2fx\n", p95b/p95s, p95b/p95o)
	if *switchFail > 0 {
		rep := serving.Degradation(cmp.Switching)
		fmt.Printf("switching degraded gracefully: %d/%d switches failed (%.0f%%), requests kept serving on the deployed model\n",
			rep.FailedSwitches, rep.SwitchAttempts, 100*rep.FailureShare)
	}
	if *metrics {
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "servesim:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", out)
	}
	if *trace {
		fmt.Printf("\nspans:\n%s", o.Tracer().TreeString())
	}
}

// clusterConfig carries the cluster/matrix-mode knobs.
type clusterConfig struct {
	candidates []serving.ModelChoice
	requests   int
	arrival    float64
	instances  int
	switchStep int
	switchFail float64
	sloTarget  float64
	gammaShape float64
	zipfS      float64
	series     int
	admitRate  float64
	admitBurst float64
	traceFile  string
	killInst   int
	killFrom   int64
	killTo     int64
	seed       uint64
}

// sloClasses is the demo class mix used by cluster and matrix modes.
func sloClasses() []cluster.Class {
	return []cluster.Class{
		{Name: "gold", Weight: 0.2, TargetMS: 30},
		{Name: "silver", Weight: 0.3, TargetMS: 80},
		{Name: "batch", Weight: 0.5},
	}
}

// policyFactory builds the per-instance policy factory for a name.
func (cc clusterConfig) policyFactory(name string) (func() serving.Policy, error) {
	switch name {
	case "fixed":
		return func() serving.Policy { return serving.FixedPolicy{Model: cc.candidates[0]} }, nil
	case "switching":
		return func() serving.Policy {
			p, err := serving.NewSwitchingPolicy(cc.candidates, cc.switchStep)
			if err != nil {
				panic(err) // candidates validated before the factory is built
			}
			return p
		}, nil
	case "slo":
		return func() serving.Policy {
			p, err := serving.NewSLOPolicy(cc.candidates, cc.sloTarget)
			if err != nil {
				panic(err)
			}
			return p
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q (want fixed, switching, slo)", name)
	}
}

// router builds a router by name.
func (cc clusterConfig) router(name string) (cluster.Router, error) {
	switch name {
	case "round-robin":
		return cluster.NewRoundRobin(), nil
	case "least-loaded":
		return cluster.NewLeastLoaded(), nil
	case "affinity":
		return cluster.AffinityRouter(cc.instances)
	default:
		return nil, fmt.Errorf("unknown router %q (want round-robin, least-loaded, affinity)", name)
	}
}

// source builds the workload: a trace replay when a file is given,
// otherwise the distribution generator. bursty overlays the load spike
// knobs (matrix mode's second load column).
func (cc clusterConfig) source(bursty bool) (cluster.Source, error) {
	if cc.traceFile != "" {
		f, err := os.Open(cc.traceFile)
		if err != nil {
			return nil, fmt.Errorf("opening trace: %w", err)
		}
		defer f.Close()
		return cluster.NewTraceSource(f)
	}
	gc := cluster.GeneratorConfig{
		Requests:      cc.requests,
		MeanArrivalMS: cc.arrival / float64(cc.instances),
		GammaShape:    cc.gammaShape,
		Classes:       sloClasses(),
		Series:        cc.series,
		ZipfS:         cc.zipfS,
		Seed:          cc.seed,
	}
	if bursty {
		gc.BurstEvery = 400
		gc.BurstLen = 80
		gc.BurstFactor = 4
	}
	return cluster.NewGenerator(gc)
}

// schedule assembles the fault schedule from the kill-window and
// switch-failure flags; nil when no faults are requested.
func (cc clusterConfig) schedule() *faults.Schedule {
	hasKill := cc.killInst >= 0 && cc.killTo > cc.killFrom
	if !hasKill && cc.switchFail <= 0 {
		return nil
	}
	sched := faults.NewSchedule(cc.seed + 1)
	if hasKill {
		sched.Set(cluster.InstanceTarget(cc.killInst), faults.Kill(cc.killFrom, cc.killTo))
	}
	if cc.switchFail > 0 {
		for i := 0; i < cc.instances; i++ {
			sched.Set(cluster.SwitchTarget(i), faults.Flake(0, 0, cc.switchFail))
		}
	}
	return sched
}

// runScenario executes one cluster scenario cell.
func (cc clusterConfig) runScenario(policy, routerName string, bursty bool) (*cluster.Result, error) {
	factory, err := cc.policyFactory(policy)
	if err != nil {
		return nil, err
	}
	r, err := cc.router(routerName)
	if err != nil {
		return nil, err
	}
	src, err := cc.source(bursty)
	if err != nil {
		return nil, err
	}
	admission := cluster.AdmitAll()
	if cc.admitRate > 0 {
		admission = cluster.NewTokenBucket(cc.admitRate, cc.admitBurst)
	}
	opts := []cluster.Option{
		cluster.WithInstances(cc.instances),
		cluster.WithPolicy(factory),
		cluster.WithRouter(r),
		cluster.WithAdmission(admission),
		cluster.WithClasses(sloClasses()...),
		cluster.WithSeed(cc.seed),
	}
	if sched := cc.schedule(); sched != nil {
		opts = append(opts, cluster.WithFaultSchedule(sched))
	}
	sim, err := cluster.New(opts...)
	if err != nil {
		return nil, err
	}
	return sim.Run(context.Background(), src)
}

// runCluster prints one scenario in full per-class detail.
func runCluster(cc clusterConfig, policy, routerName string) error {
	res, err := cc.runScenario(policy, routerName, false)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %d instances, policy=%s router=%s admission=%s workload=%s\n",
		res.Instances, res.Policy, res.Router, res.Admission, res.Workload)
	fmt.Printf("requests=%d rejected=%d failed=%d failovers=%d switches=%d/%d fairness=%.3f\n\n",
		res.Requests, res.Rejected, res.Failed, res.Failovers,
		res.FailedSwitches, res.SwitchAttempts, res.Fairness)
	fmt.Printf("%-8s %9s %7s %7s %7s %8s %8s %8s %8s %7s %6s\n",
		"CLASS", "TARGET", "ARRIVE", "REJECT", "FAIL", "P50", "P95", "P99", "MAX", "ATTAIN", "LEVEL")
	for _, c := range res.Classes {
		target := "-"
		if c.TargetMS > 0 {
			target = fmt.Sprintf("%.0fms", c.TargetMS)
		}
		fmt.Printf("%-8s %9s %7d %7d %7d %8.1f %8.1f %8.1f %8.1f %6.1f%% %6.3f\n",
			c.Class, target, c.Arrived, c.Rejected, c.Failed,
			c.P50, c.P95, c.P99, c.Max, 100*c.Attainment, c.MeanLevel)
	}
	return nil
}

// runMatrix sweeps policies x routers x loads and prints one row per
// cell. The fixed/round-robin/steady cell at -instances 1 reproduces
// the single-server baseline experiment.
func runMatrix(cc clusterConfig) error {
	policies := []string{"fixed", "switching", "slo"}
	routers := []string{"round-robin", "least-loaded", "affinity"}
	loads := []string{"steady", "bursty"}
	fmt.Printf("matrix: %d instances, %d requests/cell, mean gap %.1fms\n\n",
		cc.instances, cc.requests, cc.arrival)
	fmt.Printf("%-10s %-13s %-7s %9s %9s %9s %8s %9s %9s\n",
		"POLICY", "ROUTER", "LOAD", "GOLD-P95", "SILV-P95", "BATCH-P95", "FAIRNESS", "REJECTED", "SWITCHES")
	for _, policy := range policies {
		for _, router := range routers {
			for _, load := range loads {
				res, err := cc.runScenario(policy, router, load == "bursty")
				if err != nil {
					return fmt.Errorf("cell %s/%s/%s: %w", policy, router, load, err)
				}
				p95 := map[string]float64{}
				for _, c := range res.Classes {
					p95[c.Class] = c.P95
				}
				fmt.Printf("%-10s %-13s %-7s %9.1f %9.1f %9.1f %8.3f %9d %9d\n",
					policy, router, load, p95["gold"], p95["silver"], p95["batch"],
					res.Fairness, res.Rejected, res.SwitchAttempts)
			}
		}
	}
	return nil
}
