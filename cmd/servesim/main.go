// Command servesim runs the inference-serving simulation behind Figure
// 9(c) with tunable workload knobs, printing latency percentiles and
// model shares for the four configurations (fixed baseline, scale-out,
// Sommelier switching, combined). A switch-failure probability subjects
// the switching configurations to a fault model: failed switches fall
// back to the previously deployed model and are reported per run.
//
//	servesim -requests 50000 -arrival 22 -burst-factor 8
//	servesim -switch-fail 0.3            # re-examine Fig. 9(c) under faults
package main

import (
	"flag"
	"fmt"
	"os"

	"sommelier/internal/serving"
	"sommelier/internal/stats"
)

func main() {
	var (
		requests    = flag.Int("requests", 20000, "number of inference requests")
		arrival     = flag.Float64("arrival", 26, "mean inter-arrival gap (ms)")
		burstEvery  = flag.Int("burst-every", 400, "inject a burst every N requests (0 = no bursts)")
		burstLen    = flag.Int("burst-len", 80, "requests per burst")
		burstFactor = flag.Float64("burst-factor", 3.5, "burst arrival-rate multiplier")
		switchStep  = flag.Int("switch-step", 4, "queue-length step between model downgrades")
		switchFail  = flag.Float64("switch-fail", 0, "probability a model switch fails (falls back to the deployed model)")
		seed        = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	// The candidate ladder Sommelier would return: flagship first, then
	// progressively compact functional equivalents.
	candidates := []serving.ModelChoice{
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.975},
		{ID: "compact", ServiceMS: 3, Level: 0.955},
		{ID: "tiny", ServiceMS: 1, Level: 0.93},
	}
	w := serving.Workload{
		Requests:      *requests,
		MeanArrivalMS: *arrival,
		BurstEvery:    *burstEvery,
		BurstLen:      *burstLen,
		BurstFactor:   *burstFactor,
		Seed:          *seed,
	}
	fm := serving.FailureModel{SwitchFailProb: *switchFail, Seed: *seed + 1}
	cmp, err := serving.RunComparisonWithFailures(w, candidates, *switchStep, fm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload: %d requests, mean gap %.1fms, bursts x%.0f every %d", *requests, *arrival, *burstFactor, *burstEvery)
	if *switchFail > 0 {
		fmt.Printf(", switch failure p=%.2f", *switchFail)
	}
	fmt.Printf("\n\n")
	fmt.Printf("%-22s %8s %8s %8s %8s %11s %9s  %s\n",
		"CONFIGURATION", "P50", "P90", "P99", "MAX", "MEAN-LEVEL", "SW-FAIL", "MODEL SHARE")
	for _, r := range []serving.Result{cmp.Baseline, cmp.ScaleOut, cmp.Switching, cmp.Combined} {
		s := r.Summary()
		rep := serving.Degradation(r)
		fmt.Printf("%-22s %8.1f %8.1f %8.1f %8.1f %11.3f %4d/%-4d  %v\n",
			r.PolicyName, s.P50, s.P90, s.P99, s.MaxV, r.MeanLevel,
			rep.FailedSwitches, rep.SwitchAttempts, serving.SortedModelShare(r))
	}
	p90b := stats.Percentile(cmp.Baseline.Latencies, 90)
	p90s := stats.Percentile(cmp.Switching.Latencies, 90)
	p90o := stats.Percentile(cmp.ScaleOut.Latencies, 90)
	fmt.Printf("\np90 reduction vs baseline: switching %.1fx, scale-out %.2fx\n", p90b/p90s, p90b/p90o)
	if *switchFail > 0 {
		rep := serving.Degradation(cmp.Switching)
		fmt.Printf("switching degraded gracefully: %d/%d switches failed (%.0f%%), requests kept serving on the deployed model\n",
			rep.FailedSwitches, rep.SwitchAttempts, 100*rep.FailureShare)
	}
}
