// Command servesim runs the inference-serving simulation behind Figure
// 9(c) with tunable workload knobs, printing latency percentiles and
// model shares for the four configurations (fixed baseline, scale-out,
// Sommelier switching, combined).
//
//	servesim -requests 50000 -arrival 22 -burst-factor 8
package main

import (
	"flag"
	"fmt"
	"os"

	"sommelier/internal/serving"
	"sommelier/internal/stats"
)

func main() {
	var (
		requests    = flag.Int("requests", 20000, "number of inference requests")
		arrival     = flag.Float64("arrival", 26, "mean inter-arrival gap (ms)")
		burstEvery  = flag.Int("burst-every", 400, "inject a burst every N requests (0 = no bursts)")
		burstLen    = flag.Int("burst-len", 80, "requests per burst")
		burstFactor = flag.Float64("burst-factor", 3.5, "burst arrival-rate multiplier")
		switchStep  = flag.Int("switch-step", 4, "queue-length step between model downgrades")
		seed        = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	// The candidate ladder Sommelier would return: flagship first, then
	// progressively compact functional equivalents.
	candidates := []serving.ModelChoice{
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.975},
		{ID: "compact", ServiceMS: 3, Level: 0.955},
		{ID: "tiny", ServiceMS: 1, Level: 0.93},
	}
	w := serving.Workload{
		Requests:      *requests,
		MeanArrivalMS: *arrival,
		BurstEvery:    *burstEvery,
		BurstLen:      *burstLen,
		BurstFactor:   *burstFactor,
		Seed:          *seed,
	}
	cmp, err := serving.RunComparison(w, candidates, *switchStep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload: %d requests, mean gap %.1fms, bursts x%.0f every %d\n\n",
		*requests, *arrival, *burstFactor, *burstEvery)
	fmt.Printf("%-22s %8s %8s %8s %8s %11s  %s\n",
		"CONFIGURATION", "P50", "P90", "P99", "MAX", "MEAN-LEVEL", "MODEL SHARE")
	for _, r := range []serving.Result{cmp.Baseline, cmp.ScaleOut, cmp.Switching, cmp.Combined} {
		s := r.Summary()
		fmt.Printf("%-22s %8.1f %8.1f %8.1f %8.1f %11.3f  %v\n",
			r.PolicyName, s.P50, s.P90, s.P99, s.MaxV, r.MeanLevel, serving.SortedModelShare(r))
	}
	p90b := stats.Percentile(cmp.Baseline.Latencies, 90)
	p90s := stats.Percentile(cmp.Switching.Latencies, 90)
	p90o := stats.Percentile(cmp.ScaleOut.Latencies, 90)
	fmt.Printf("\np90 reduction vs baseline: switching %.1fx, scale-out %.2fx\n", p90b/p90s, p90b/p90o)
}
