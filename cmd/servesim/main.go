// Command servesim runs the inference-serving simulation behind Figure
// 9(c) with tunable workload knobs, printing latency percentiles and
// model shares for the four configurations (fixed baseline, scale-out,
// Sommelier switching, combined). A switch-failure probability subjects
// the switching configurations to a fault model: failed switches fall
// back to the previously deployed model and are reported per run.
//
// Percentiles come from the observability layer: each configuration's
// latencies feed a serving_<policy>_latency_ms histogram and the table
// reads the histogram summaries — the same numbers -metrics exports as
// JSON and a hub serving a shared observer exposes at /v1/metrics.
//
//	servesim -requests 50000 -arrival 22 -burst-factor 8
//	servesim -switch-fail 0.3            # re-examine Fig. 9(c) under faults
//	servesim -metrics                    # dump the metrics snapshot as JSON
//	servesim -trace                      # print the simulation span tree
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sommelier/internal/obs"
	"sommelier/internal/serving"
)

func main() {
	var (
		requests    = flag.Int("requests", 20000, "number of inference requests")
		arrival     = flag.Float64("arrival", 26, "mean inter-arrival gap (ms)")
		burstEvery  = flag.Int("burst-every", 400, "inject a burst every N requests (0 = no bursts)")
		burstLen    = flag.Int("burst-len", 80, "requests per burst")
		burstFactor = flag.Float64("burst-factor", 3.5, "burst arrival-rate multiplier")
		switchStep  = flag.Int("switch-step", 4, "queue-length step between model downgrades")
		switchFail  = flag.Float64("switch-fail", 0, "probability a model switch fails (falls back to the deployed model)")
		seed        = flag.Uint64("seed", 1, "random seed")
		metrics     = flag.Bool("metrics", false, "print the observability snapshot as JSON after the run")
		trace       = flag.Bool("trace", false, "print the simulation span tree after the run")
	)
	flag.Parse()

	// The candidate ladder Sommelier would return: flagship first, then
	// progressively compact functional equivalents.
	candidates := []serving.ModelChoice{
		{ID: "flagship", ServiceMS: 20, Level: 1.0},
		{ID: "mid", ServiceMS: 8, Level: 0.975},
		{ID: "compact", ServiceMS: 3, Level: 0.955},
		{ID: "tiny", ServiceMS: 1, Level: 0.93},
	}
	w := serving.Workload{
		Requests:      *requests,
		MeanArrivalMS: *arrival,
		BurstEvery:    *burstEvery,
		BurstLen:      *burstLen,
		BurstFactor:   *burstFactor,
		Seed:          *seed,
	}
	fm := serving.FailureModel{SwitchFailProb: *switchFail, Seed: *seed + 1}

	o := obs.New()
	ctx, root := o.StartSpan(context.Background(), "servesim", "")
	_, span := o.StartSpan(ctx, "comparison", fmt.Sprintf("%d requests", *requests))
	cmp, err := serving.RunComparisonObserved(o, w, candidates, *switchStep, fm)
	span.End()
	root.End()
	if err != nil {
		fmt.Fprintln(os.Stderr, "servesim:", err)
		os.Exit(1)
	}
	snap := o.Snapshot()
	histFor := func(r serving.Result) obs.HistSummary {
		return snap.Histograms["serving_"+serving.MetricName(r.PolicyName)+"_latency_ms"]
	}

	fmt.Printf("workload: %d requests, mean gap %.1fms, bursts x%.0f every %d", *requests, *arrival, *burstFactor, *burstEvery)
	if *switchFail > 0 {
		fmt.Printf(", switch failure p=%.2f", *switchFail)
	}
	fmt.Printf("\n\n")
	fmt.Printf("%-22s %8s %8s %8s %8s %11s %9s  %s\n",
		"CONFIGURATION", "P50", "P95", "P99", "MAX", "MEAN-LEVEL", "SW-FAIL", "MODEL SHARE")
	for _, r := range []serving.Result{cmp.Baseline, cmp.ScaleOut, cmp.Switching, cmp.Combined} {
		s := histFor(r)
		rep := serving.Degradation(r)
		fmt.Printf("%-22s %8.1f %8.1f %8.1f %8.1f %11.3f %4d/%-4d  %v\n",
			r.PolicyName, s.P50, s.P95, s.P99, s.Max, r.MeanLevel,
			rep.FailedSwitches, rep.SwitchAttempts, serving.SortedModelShare(r))
	}
	p95b := histFor(cmp.Baseline).P95
	p95s := histFor(cmp.Switching).P95
	p95o := histFor(cmp.ScaleOut).P95
	fmt.Printf("\np95 reduction vs baseline: switching %.1fx, scale-out %.2fx\n", p95b/p95s, p95b/p95o)
	if *switchFail > 0 {
		rep := serving.Degradation(cmp.Switching)
		fmt.Printf("switching degraded gracefully: %d/%d switches failed (%.0f%%), requests kept serving on the deployed model\n",
			rep.FailedSwitches, rep.SwitchAttempts, 100*rep.FailureShare)
	}
	if *metrics {
		out, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "servesim:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s\n", out)
	}
	if *trace {
		fmt.Printf("\nspans:\n%s", o.Tracer().TreeString())
	}
}
