// Command sommbench regenerates every table and figure from the paper's
// evaluation (§7) plus the ablation studies DESIGN.md calls out, printing
// paper-style rows. Run all experiments:
//
//	sommbench
//
// or a subset:
//
//	sommbench -exp fig9a,fig9c,table3
//
// Scale knobs:
//
//	sommbench -exp table2 -table2scale 0.25   # closer to paper model sizes
//	sommbench -exp fig13 -fig13full           # the full 30-series catalog
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sommelier/internal/experiments"
	"sommelier/internal/zoo"
)

type runner struct {
	id  string
	run func() (fmt.Stringer, error)
}

func main() {
	var (
		expFlag     = flag.String("exp", "all", "comma-separated experiment ids (fig3,fig9a,fig9b,fig9c,fig10,fig11,fig12a,fig12b,fig13,table1,table2,table3,table4,ablations,indexbench,querybench,clusterbench,storebench,servebench) or 'all'")
		indexOut    = flag.String("index-out", "", "write the indexbench result as JSON to this file")
		queryOut    = flag.String("query-out", "", "write the querybench result as JSON to this file")
		clusterOut  = flag.String("cluster-out", "", "write the clusterbench result as JSON to this file")
		storeOut    = flag.String("store-out", "", "write the storebench result as JSON to this file")
		servingOut  = flag.String("serving-out", "", "write the servebench result as JSON to this file")
		table2Scale = flag.Float64("table2scale", 0.02, "fraction of the paper's model sizes for table2 (1.0 = full 62M..340M parameters)")
		fig13Full   = flag.Bool("fig13full", false, "run fig13 on the full 30-series/163-model catalog")
		seed        = flag.Uint64("seed", 2022, "base random seed")
	)
	flag.Parse()

	runners := []runner{
		{"fig3", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig3Config()
			cfg.Seed = *seed
			r, err := experiments.RunFig3(cfg)
			return report(r, err)
		}},
		{"fig9a", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig9aConfig()
			cfg.Seed = *seed
			r, err := experiments.RunFig9a(cfg)
			return report(r, err)
		}},
		{"fig9b", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig9bConfig()
			cfg.Seed = *seed
			r, err := experiments.RunFig9b(cfg)
			return report(r, err)
		}},
		{"fig9c", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig9cConfig()
			cfg.Seed = *seed
			r, err := experiments.RunFig9c(cfg)
			return report(r, err)
		}},
		{"fig10", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig10Config()
			cfg.Seed = *seed
			r, err := experiments.RunFig10(cfg)
			return report(r, err)
		}},
		{"fig11", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig11Config()
			cfg.Seed = *seed
			r, err := experiments.RunFig11(cfg)
			return report(r, err)
		}},
		{"fig12a", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig12aConfig()
			cfg.Seed = *seed
			r, err := experiments.RunFig12a(cfg)
			return report(r, err)
		}},
		{"fig12b", func() (fmt.Stringer, error) {
			r, err := experiments.RunFig12b(experiments.Fig12bConfig{Seed: *seed})
			return report(r, err)
		}},
		{"fig13", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultFig13Config()
			cfg.Seed = *seed
			if *fig13Full {
				cfg.Catalog = zoo.DefaultCatalogConfig()
				cfg.SeriesCounts = []int{5, 10, 15, 20, 25, 30}
				cfg.Repeats = 5
			}
			r, err := experiments.RunFig13(cfg)
			return report(r, err)
		}},
		{"table1", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultTable1Config()
			cfg.Seed = *seed
			r, err := experiments.RunTable1(cfg)
			return report(r, err)
		}},
		{"table2", func() (fmt.Stringer, error) {
			r, err := experiments.RunTable2(experiments.Table2Config{Scale: *table2Scale, Seed: *seed})
			return report(r, err)
		}},
		{"table3", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultTable3Config()
			cfg.Seed = *seed
			r, err := experiments.RunTable3(cfg)
			return report(r, err)
		}},
		{"table4", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultTable4Config()
			cfg.Seed = *seed
			r, err := experiments.RunTable4(cfg)
			return report(r, err)
		}},
		{"indexbench", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultIndexBenchConfig()
			cfg.Seed = *seed
			r, err := experiments.RunIndexBench(cfg)
			if err != nil {
				return nil, err
			}
			if *indexOut != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*indexOut, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
				fmt.Printf("wrote %s\n", *indexOut)
			}
			return r.Report(), nil
		}},
		{"querybench", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultQueryBenchConfig()
			cfg.Seed = *seed
			r, err := experiments.RunQueryBench(context.Background(), cfg)
			if err != nil {
				return nil, err
			}
			if *queryOut != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*queryOut, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
				fmt.Printf("wrote %s\n", *queryOut)
			}
			return r.Report(), nil
		}},
		{"clusterbench", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultClusterBenchConfig()
			cfg.Seed = *seed
			r, err := experiments.RunClusterBench(context.Background(), cfg)
			if err != nil {
				return nil, err
			}
			if *clusterOut != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*clusterOut, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
				fmt.Printf("wrote %s\n", *clusterOut)
			}
			return r.Report(), nil
		}},
		{"storebench", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultStoreBenchConfig()
			cfg.Seed = *seed
			r, err := experiments.RunStoreBench(context.Background(), cfg)
			if err != nil {
				return nil, err
			}
			if *storeOut != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*storeOut, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
				fmt.Printf("wrote %s\n", *storeOut)
			}
			return r.Report(), nil
		}},
		{"servebench", func() (fmt.Stringer, error) {
			cfg := experiments.DefaultServeBenchConfig()
			cfg.Seed = *seed
			r, err := experiments.RunServeBench(context.Background(), cfg)
			if err != nil {
				return nil, err
			}
			if *servingOut != "" {
				data, err := json.MarshalIndent(r, "", "  ")
				if err != nil {
					return nil, err
				}
				if err := os.WriteFile(*servingOut, append(data, '\n'), 0o644); err != nil {
					return nil, err
				}
				fmt.Printf("wrote %s\n", *servingOut)
			}
			return r.Report(), nil
		}},
		{"ablations", func() (fmt.Stringer, error) {
			var out multiReport
			b, err := experiments.RunAblationBound(*seed)
			if err != nil {
				return nil, err
			}
			out = append(out, b.Report())
			s, err := experiments.RunAblationSampling(*seed)
			if err != nil {
				return nil, err
			}
			out = append(out, s.Report())
			l, err := experiments.RunAblationLSH(*seed)
			if err != nil {
				return nil, err
			}
			out = append(out, l.Report())
			g, err := experiments.RunAblationSegment(*seed)
			if err != nil {
				return nil, err
			}
			out = append(out, g.Report())
			c, err := experiments.RunAblationSwitchCost(*seed)
			if err != nil {
				return nil, err
			}
			out = append(out, c.Report())
			return out, nil
		}},
	}

	want := map[string]bool{}
	all := *expFlag == "all"
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}

	failed := false
	for _, r := range runners {
		if !all && !want[r.id] {
			continue
		}
		start := time.Now()
		rep, err := r.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("-- %s completed in %s --\n\n", r.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}

// reporter is any experiment result that renders a Report.
type reporter interface{ Report() experiments.Report }

func report(r reporter, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return r.Report(), nil
}

type multiReport []experiments.Report

func (m multiReport) String() string {
	var b strings.Builder
	for _, r := range m {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
