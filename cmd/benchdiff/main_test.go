package main

import (
	"strings"
	"testing"
)

const baseDoc = `{
  "models": 32,
  "publish_ms": {"count": 32, "p50_ms": 0.8, "p95_ms": 2.0, "p99_ms": 3.0},
  "stages": [
    {"stage": "parse", "p95_ms": 1.0},
    {"stage": "rank", "p95_ms": 4.0}
  ]
}`

func TestDiffCleanWhenWithinThreshold(t *testing.T) {
	fresh := `{
  "models": 32,
  "publish_ms": {"count": 32, "p50_ms": 9.9, "p95_ms": 2.3, "p99_ms": 9.9},
  "stages": [
    {"stage": "parse", "p95_ms": 1.1},
    {"stage": "rank", "p95_ms": 3.0}
  ]
}`
	regs, notes, err := diff([]byte(baseDoc), []byte(fresh), 0.20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	// publish p95 +15%, parse +10%, rank improved; p50/p99 ignored.
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected notes: %v", notes)
	}
}

func TestDiffFlagsP95Regression(t *testing.T) {
	fresh := strings.Replace(baseDoc, `"p95_ms": 4.0`, `"p95_ms": 5.5`, 1)
	regs, _, err := diff([]byte(baseDoc), []byte(fresh), 0.20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "stages[1].p95_ms") {
		t.Fatalf("regressions = %v, want exactly the rank-stage p95", regs)
	}
}

func TestDiffFloorSuppressesNoise(t *testing.T) {
	base := `{"load_ms": {"p95_ms": 0.10}}`
	fresh := `{"load_ms": {"p95_ms": 0.30}}` // +200% but +0.2ms
	regs, _, err := diff([]byte(base), []byte(fresh), 0.20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("sub-floor jitter flagged: %v", regs)
	}
}

func TestDiffNotesShapeChanges(t *testing.T) {
	fresh := `{
  "publish_ms": {"p95_ms": 2.0},
  "hydrate_ms": {"p95_ms": 1.0}
}`
	regs, notes, err := diff([]byte(baseDoc), []byte(fresh), 0.20, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("shape changes are notes, got regressions: %v", regs)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "hydrate_ms.p95_ms: no baseline") {
		t.Fatalf("new leaf not noted: %v", notes)
	}
	if !strings.Contains(joined, "stages[0].p95_ms: dropped") {
		t.Fatalf("dropped leaf not noted: %v", notes)
	}
}

func TestDiffRejectsGarbage(t *testing.T) {
	if _, _, err := diff([]byte("{"), []byte("{}"), 0.2, 0.25); err == nil {
		t.Fatal("truncated baseline accepted")
	}
	if _, _, err := diff([]byte("{}"), []byte("nope"), 0.2, 0.25); err == nil {
		t.Fatal("garbage fresh file accepted")
	}
}
