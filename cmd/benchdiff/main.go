// Command benchdiff guards the committed benchmark baselines: it
// compares the BENCH_*.json files on disk (fresh results when `make
// bench` just ran) against the versions committed at a git ref
// (default HEAD) and fails when any p95 latency regressed by more than
// the threshold. Tiny absolute movements below the noise floor never
// fail, so sub-millisecond jitter cannot break CI.
//
//	benchdiff                       # every BENCH_*.json vs HEAD
//	benchdiff -threshold 0.1 BENCH_store.json
//	benchdiff -base origin/main
//
// A file with no committed baseline (or no working-tree copy) is
// reported and skipped — first-time benchmarks are not regressions.
// Stdlib only; git is invoked for the baseline bytes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.20, "relative p95 regression that fails (0.20 = +20%)")
		floor     = flag.Float64("floor-ms", 0.25, "absolute p95 growth (ms) below which a regression is noise")
		base      = flag.String("base", "HEAD", "git ref holding the baseline files")
	)
	flag.Parse()

	files := flag.Args()
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil || len(files) == 0 {
			fmt.Println("benchdiff: no BENCH_*.json files to compare")
			return
		}
		sort.Strings(files)
	}

	failed := false
	for _, file := range files {
		fresh, err := os.ReadFile(file)
		if err != nil {
			fmt.Printf("benchdiff: %s: skipped (no working-tree copy: %v)\n", file, err)
			continue
		}
		baseline, err := exec.Command("git", "show", *base+":"+file).Output()
		if err != nil {
			fmt.Printf("benchdiff: %s: skipped (no baseline at %s)\n", file, *base)
			continue
		}
		regs, notes, err := diff(baseline, fresh, *threshold, *floor)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", file, err)
			failed = true
			continue
		}
		for _, n := range notes {
			fmt.Printf("benchdiff: %s: note: %s\n", file, n)
		}
		if len(regs) == 0 {
			fmt.Printf("benchdiff: %s: ok\n", file)
			continue
		}
		failed = true
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: REGRESSION %s\n", file, r)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// diff compares every p95 latency leaf shared by the two JSON
// documents. A leaf regresses when it grew by more than threshold
// relatively AND more than floorMs absolutely. Leaves present on only
// one side (a benchmark gained or lost a stage) are notes, not
// failures.
func diff(baseline, fresh []byte, threshold, floorMs float64) (regressions, notes []string, err error) {
	var bdoc, fdoc any
	if err := json.Unmarshal(baseline, &bdoc); err != nil {
		return nil, nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(fresh, &fdoc); err != nil {
		return nil, nil, fmt.Errorf("fresh: %w", err)
	}
	bp, fp := map[string]float64{}, map[string]float64{}
	p95Leaves(bdoc, "", bp)
	p95Leaves(fdoc, "", fp)

	keys := make([]string, 0, len(bp)+len(fp))
	for k := range bp {
		keys = append(keys, k)
	}
	for k := range fp {
		if _, ok := bp[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, inB := bp[k]
		f, inF := fp[k]
		switch {
		case !inB:
			notes = append(notes, fmt.Sprintf("%s: no baseline value (%.3fms fresh)", k, f))
		case !inF:
			notes = append(notes, fmt.Sprintf("%s: dropped from fresh results (%.3fms baseline)", k, b))
		case f > b*(1+threshold) && f-b > floorMs:
			regressions = append(regressions,
				fmt.Sprintf("%s: %.3fms -> %.3fms (+%.0f%%, threshold +%.0f%%)",
					k, b, f, 100*(f-b)/b, 100*threshold))
		}
	}
	return regressions, notes, nil
}

// p95Leaves walks a decoded JSON document collecting every numeric
// leaf whose key ends in "p95_ms", keyed by its dotted path. Array
// elements are keyed by index; every benchmark writer emits arrays in
// a stable order, so positions are comparable across runs.
func p95Leaves(v any, path string, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, child := range t {
			p := k
			if path != "" {
				p = path + "." + k
			}
			if f, ok := child.(float64); ok && strings.HasSuffix(k, "p95_ms") {
				out[p] = f
				continue
			}
			p95Leaves(child, p, out)
		}
	case []any:
		for i, child := range t {
			p95Leaves(child, fmt.Sprintf("%s[%d]", path, i), out)
		}
	}
}
