// Command sommelier is the interactive face of the query engine: it
// builds or opens a model repository, indexes it, and answers queries in
// the Figure 7 syntax.
//
// Seed a demo repository on disk and query it:
//
//	sommelier -repo ./models -seed-demo
//	sommelier -repo ./models -query 'SELECT CORR "demo-base@1" WITHIN 85% ON memory <= 120% PICK most_similar'
//
// Or run an interactive prompt:
//
//	sommelier -repo ./models -i
//
// The engine observes itself: -metrics prints the unified metrics
// snapshot (indexing stage timings, query stage histograms, worker
// occupancy) as JSON on exit, and -trace prints the recorded span tree.
// A SIGINT during indexing cancels the worker pool mid-batch.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"sommelier"
	"sommelier/internal/dataset"
	"sommelier/internal/hub"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

func main() {
	var (
		repoDir     = flag.String("repo", "", "repository directory (empty = in-memory)")
		hubURL      = flag.String("hub", "", "mirror models from a remote sommhub before indexing")
		queryStr    = flag.String("query", "", "one query to execute")
		interactive = flag.Bool("i", false, "interactive query prompt")
		seedDemo    = flag.Bool("seed-demo", false, "populate the repository with a demo model family")
		listModels  = flag.Bool("list", false, "list repository models and exit")
		segments    = flag.Bool("segments", false, "enable segment-level analysis during indexing (slower)")
		loadIndex   = flag.String("load-index", "", "restore index state from a snapshot file instead of re-analyzing")
		saveIndex   = flag.String("save-index", "", "write index state to a snapshot file after indexing")
		seed        = flag.Uint64("seed", 7, "random seed")
		hubTimeout  = flag.Duration("hub-timeout", hub.DefaultTimeout, "per-request hub timeout")
		hubRetries  = flag.Int("hub-retries", hub.DefaultRetries, "retries for idempotent hub requests")
		hubCacheCap = flag.Int("hub-cache", hub.DefaultCacheCap, "hub client model-cache cap (LRU entries, <=0 unbounded)")
		metrics     = flag.Bool("metrics", false, "print the metrics snapshot as JSON on exit")
		trace       = flag.Bool("trace", false, "print the recorded span tree on exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store, err := openStore(*repoDir)
	if err != nil {
		fatal(err)
	}
	if *hubURL != "" {
		client, err := hub.NewClient(*hubURL, nil,
			hub.WithTimeout(*hubTimeout),
			hub.WithRetries(*hubRetries),
			hub.WithCacheCap(*hubCacheCap))
		if err != nil {
			fatal(err)
		}
		n, err := client.Mirror(store)
		// A partially mirrored hub is still a usable repository: warn
		// about the lost models and index what arrived.
		var merr *hub.MirrorError
		if errors.As(err, &merr) {
			fmt.Fprintf(os.Stderr, "sommelier: warning: %v\n", merr)
		} else if err != nil {
			fatal(err)
		}
		fmt.Printf("mirrored %d models from %s\n", n, *hubURL)
	}
	eng, err := sommelier.NewEngine(store,
		sommelier.WithSeed(*seed),
		sommelier.WithSegments(*segments))
	if err != nil {
		fatal(err)
	}

	if *seedDemo {
		if err := seedDemoModels(ctx, eng, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("seeded %d demo models\n", store.Len())
	}

	if *loadIndex != "" {
		f, err := os.Open(*loadIndex)
		if err != nil {
			fatal(err)
		}
		err = eng.LoadIndexes(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("restored index snapshot from %s\n", *loadIndex)
	}
	if err := eng.IndexAllContext(ctx); err != nil {
		fatal(err)
	}
	fmt.Printf("indexed %d models\n", eng.IndexedLen())
	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			fatal(err)
		}
		err = eng.SaveIndexes(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("saved index snapshot to %s\n", *saveIndex)
	}

	if *listModels {
		for _, md := range store.List() {
			fmt.Printf("%-28s task=%-16s series=%s\n", md.ID, md.Task, md.Series)
		}
		dumpObs(eng, *metrics, *trace)
		return
	}

	if *queryStr != "" {
		if err := runQuery(ctx, eng, *queryStr); err != nil {
			fatal(err)
		}
	}

	if *interactive {
		prompt(ctx, eng)
	}
	dumpObs(eng, *metrics, *trace)
}

// dumpObs prints the requested observability views on the way out.
func dumpObs(eng *sommelier.Engine, metrics, trace bool) {
	if metrics {
		out, err := json.MarshalIndent(eng.Observer().Snapshot(), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nmetrics:\n%s\n", out)
	}
	if trace {
		fmt.Printf("\nspans:\n%s", eng.Observer().Tracer().TreeString())
	}
}

func openStore(dir string) (*repo.Repository, error) {
	if dir == "" {
		return repo.NewInMemory(), nil
	}
	return repo.Open(dir)
}

// seedDemoModels publishes a base model, calibrated variants at several
// equivalence levels, and one inflated large sibling.
func seedDemoModels(ctx context.Context, eng *sommelier.Engine, seed uint64) error {
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "demo-base", Seed: seed, Width: 32, Depth: 2})
	if err != nil {
		return err
	}
	if _, err := eng.RegisterContext(ctx, base); err != nil {
		return err
	}
	probes := dataset.RandomImages(300, base.InputShape, seed+1)
	for i, target := range []float64{0.02, 0.05, 0.1, 0.2} {
		v, _, err := zoo.CalibratedVariant(base, fmt.Sprintf("demo-v%d", i), target, probes, seed+uint64(i)+2)
		if err != nil {
			return err
		}
		if _, err := eng.RegisterContext(ctx, v); err != nil {
			return err
		}
	}
	big, err := zoo.Inflate(base, "demo-large", 32, 96, seed+9)
	if err != nil {
		return err
	}
	_, err = eng.RegisterContext(ctx, big)
	return err
}

func runQuery(ctx context.Context, eng *sommelier.Engine, q string) error {
	results, err := eng.QueryContext(ctx, q)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		fmt.Println("no models satisfy the query")
		return nil
	}
	fmt.Printf("%-28s %-7s %-12s %-12s %-10s %s\n",
		"MODEL", "LEVEL", "MEMORY(MB)", "GFLOPS", "LAT(MS)", "NOTES")
	for _, r := range results {
		notes := ""
		if r.Synthesized {
			notes = "synthesized from " + r.DonorID + " [" + r.Segment + "]"
		} else if r.Derived {
			notes = "level derived transitively"
		}
		v := r.Profile.Vector()
		fmt.Printf("%-28s %-7.3f %-12.3f %-12.4f %-10.4f %s\n",
			r.ID, r.Level, v[0], v[1], v[2], notes)
	}
	return nil
}

func prompt(ctx context.Context, eng *sommelier.Engine) {
	fmt.Println(`enter queries (e.g. SELECT CORR "demo-base@1" WITHIN 85% PICK most_similar), "explain <query>", or "quit"`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sommelier> ")
		if !sc.Scan() {
			return
		}
		linetxt := strings.TrimSpace(sc.Text())
		switch {
		case linetxt == "":
			continue
		case linetxt == "quit" || linetxt == "exit":
			return
		case strings.HasPrefix(linetxt, "explain "):
			exp, err := eng.ExplainContext(ctx, strings.TrimPrefix(linetxt, "explain "))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				continue
			}
			fmt.Print(exp.String())
			continue
		}
		if err := runQuery(ctx, eng, linetxt); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sommelier:", err)
	os.Exit(1)
}
