// Command sommlint runs Sommelier's in-tree static-analysis suite
// (internal/lint) over the module: the syntactic checks (lockcheck,
// snapcheck, detcheck, ctxcheck, errcmp, optcheck) plus the
// flow-sensitive ones built on the CFG engine (lockflow, leakcheck,
// errflow) — the machine-checked versions of the invariants DESIGN.md
// documents. Findings can be silenced case by case with a justified
// `//lint:ignore <analyzer> <reason>` directive; unused or reasonless
// directives are themselves findings.
//
// Usage:
//
//	sommlint [-json] [-only a,b] [-list] [packages]
//
// Packages follow go-command patterns ("./...", "./internal/catalog");
// the default is ./... from the enclosing module root.
//
// Exit codes (the vet contract, so CI can tell findings from breakage):
//
//	0  no diagnostics
//	1  one or more diagnostics
//	2  usage, load, or type-check error
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sommelier/internal/lint"
)

// jsonDiagnostic is the machine-readable diagnostic shape, documented
// in README.md for future CI consumption.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sommlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: sommlint [-json] [-only a,b] [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sommlint:", err)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sommlint:", err)
		return 2
	}
	cfg, err := lint.ConfigForDir(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sommlint:", err)
		return 2
	}
	pkgs, err := lint.Load(cfg, fs.Args())
	if err != nil {
		// Broken input still gets file:line:col lines, one per error.
		var le *lint.LoadError
		if errors.As(err, &le) {
			for _, d := range le.Diags {
				fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n",
					relPath(cwd, d.Position.Filename), d.Position.Line, d.Position.Column,
					d.Analyzer, d.Message)
			}
			return 2
		}
		fmt.Fprintln(os.Stderr, "sommlint:", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		out := make([]jsonDiagnostic, len(diags))
		for i, d := range diags {
			out[i] = jsonDiagnostic{
				File:     relPath(cwd, d.Position.Filename),
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "sommlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n",
				relPath(cwd, d.Position.Filename), d.Position.Line, d.Position.Column,
				d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// relPath shortens absolute diagnostic paths relative to the working
// directory when that makes them shorter, mirroring go vet output.
func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && len(rel) < len(path) {
		return rel
	}
	return path
}
