package sommelier

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"sommelier/internal/index"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// TestEngineConcurrentQueriesDuringRegistration drives queries from many
// goroutines while new models are being registered — the serving-system
// usage pattern (§7.1's automatic model switching queries on the hot
// path while the repository grows). Run with -race in CI.
func TestEngineConcurrentQueriesDuringRegistration(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 21, ValidationSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "conc", Seed: 1, Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	refID, err := eng.Register(base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writer: register variants.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			v := zoo.Perturb(base, fmt.Sprintf("conc-v%d", i), 0.05, uint64(i+2))
			if _, err := eng.Register(v); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: query, explain, top-K concurrently.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 10% PICK most_similar`); err != nil {
					errs <- err
					return
				}
				if _, err := eng.TopEquivalents(refID, 3); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if eng.IndexedLen() != 7 {
		t.Fatalf("IndexedLen = %d", eng.IndexedLen())
	}
}

// TestEngineSnapshotConsistencyUnderStress hammers every engine surface
// at once — Register, IndexAll, Query, Explain, TopEquivalents — and
// checks that readers only ever observe consistent snapshots: every
// result carries a real profile, a sane level, and a loadable model,
// and Explain's per-stage counts add up. Registration racing IndexAll
// over the same models must deduplicate inside the commit stage, so
// the only tolerated write error is "already indexed". Run with -race
// in CI (make check).
func TestEngineSnapshotConsistencyUnderStress(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 33, ValidationSize: 60, IndexWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "stress", Seed: 1, Width: 16})
	if err != nil {
		t.Fatal(err)
	}
	refID, err := eng.Register(base)
	if err != nil {
		t.Fatal(err)
	}

	const registered, published = 5, 5
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	tolerated := func(err error) bool { return errors.Is(err, index.ErrAlreadyIndexed) }

	// Writer 1: register variants one at a time.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < registered; i++ {
			v := zoo.Perturb(base, fmt.Sprintf("stress-r%d", i), 0.05, uint64(i+2))
			if _, err := eng.Register(v); err != nil && !tolerated(err) {
				errs <- err
				return
			}
		}
	}()

	// Writer 2: publish straight to the repository, then batch-index —
	// racing writer 1's commits and exercising the in-commit dedup.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < published; i++ {
			v := zoo.Perturb(base, fmt.Sprintf("stress-p%d", i), 0.07, uint64(i+20))
			if _, err := store.Publish(v); err != nil {
				errs <- err
				return
			}
			if err := eng.IndexAll(); err != nil && !tolerated(err) {
				errs <- err
				return
			}
		}
	}()

	// Readers: every result must come from one consistent snapshot.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				results, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 10% PICK most_similar`)
				if err != nil {
					errs <- err
					return
				}
				for _, r := range results {
					if r.Profile.IsZero() {
						errs <- fmt.Errorf("result %q has zero profile: torn snapshot", r.ID)
						return
					}
					if r.Level < 0 || r.Level > 1 {
						errs <- fmt.Errorf("result %q level %v outside [0,1]", r.ID, r.Level)
						return
					}
					if _, err := store.Load(r.ID); err != nil {
						errs <- fmt.Errorf("result %q not loadable: %v", r.ID, err)
						return
					}
				}
				exp, err := eng.Explain(`SELECT CORR "` + refID + `" WITHIN 10% PICK most_similar`)
				if err != nil {
					errs <- err
					return
				}
				if exp.Returned != len(exp.Results) || exp.Returned > exp.SemanticCandidates {
					errs <- fmt.Errorf("explain counts inconsistent: returned %d, results %d, semantic %d",
						exp.Returned, len(exp.Results), exp.SemanticCandidates)
					return
				}
				if _, err := eng.TopEquivalents(refID, 3); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every published model must be indexed exactly once.
	if err := eng.IndexAll(); err != nil {
		t.Fatal(err)
	}
	want := 1 + registered + published
	if eng.IndexedLen() != want {
		t.Fatalf("IndexedLen = %d, want %d", eng.IndexedLen(), want)
	}
	for _, md := range store.List() {
		if _, ok := eng.Profile(md.ID); !ok {
			t.Fatalf("published model %q has no indexed profile", md.ID)
		}
	}
}
