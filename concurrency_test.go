package sommelier

import (
	"fmt"
	"sync"
	"testing"

	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// TestEngineConcurrentQueriesDuringRegistration drives queries from many
// goroutines while new models are being registered — the serving-system
// usage pattern (§7.1's automatic model switching queries on the hot
// path while the repository grows). Run with -race in CI.
func TestEngineConcurrentQueriesDuringRegistration(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 21, ValidationSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "conc", Seed: 1, Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	refID, err := eng.Register(base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// Writer: register variants.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			v := zoo.Perturb(base, fmt.Sprintf("conc-v%d", i), 0.05, uint64(i+2))
			if _, err := eng.Register(v); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Readers: query, explain, top-K concurrently.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := eng.Query(`SELECT CORR "` + refID + `" WITHIN 10% PICK most_similar`); err != nil {
					errs <- err
					return
				}
				if _, err := eng.TopEquivalents(refID, 3); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if eng.IndexedLen() != 7 {
		t.Fatalf("IndexedLen = %d", eng.IndexedLen())
	}
}
