// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablation benches DESIGN.md calls out.
// Each bench runs the corresponding experiment driver end-to-end and
// reports domain-specific metrics alongside ns/op, so
//
//	go test -bench=. -benchmem
//
// regenerates (a reduced-scale version of) the paper's entire evaluation.
// cmd/sommbench prints the full paper-style tables.
package sommelier_test

import (
	"runtime"
	"testing"

	"sommelier"
	"sommelier/internal/experiments"
	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// indexAllBench measures IndexAll over a fresh 24-model zoo catalog
// with the given worker count, reporting models indexed per second.
// Compare BenchmarkIndexAllSerial against BenchmarkIndexAllParallel
// for the pipeline's fan-out win; make bench writes the same
// comparison to BENCH_index.json via cmd/sommbench -exp indexbench.
func indexAllBench(b *testing.B, workers int) {
	b.Helper()
	series, err := zoo.Catalog(zoo.CatalogConfig{
		NumSeries: 6, MinPerSeries: 4, MaxPerSeries: 4, NumTrunks: 3, Seed: 0xbe7c,
	})
	if err != nil {
		b.Fatal(err)
	}
	const models = 24
	for i := 0; i < b.N; i++ {
		store := repo.NewInMemory()
		for _, s := range series {
			for _, m := range s.Models {
				if _, err := store.Publish(m); err != nil {
					b.Fatal(err)
				}
			}
		}
		eng, err := sommelier.New(store, sommelier.Options{
			Seed: 17, ValidationSize: 80, IndexWorkers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.IndexAll(); err != nil {
			b.Fatal(err)
		}
		if eng.IndexedLen() != models {
			b.Fatalf("indexed %d models, want %d", eng.IndexedLen(), models)
		}
	}
	b.ReportMetric(float64(models*b.N)/b.Elapsed().Seconds(), "models/sec")
}

func BenchmarkIndexAllSerial(b *testing.B) {
	indexAllBench(b, 1)
}

func BenchmarkIndexAllParallel(b *testing.B) {
	indexAllBench(b, runtime.NumCPU())
}

func BenchmarkFigure3AgreementMatrix(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	cfg.Samples = 500
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MinOffDiagonal(), "min-pair-agree")
		b.ReportMetric(res.MaxDiagonal(), "max-own-acc")
	}
}

func BenchmarkFigure9aQueryQuality(b *testing.B) {
	cfg := experiments.Fig9aConfig{
		Spreads:         []float64{0.04, 0.10},
		Bases:           4,
		VariantsPerBase: 6,
		ValidationSize:  800,
		Seed:            7,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.HitRates[0]*100, "hit%@4")
		b.ReportMetric(res.HitRates[len(res.HitRates)-1]*100, "hit%@10")
	}
}

func BenchmarkFigure9bEffort(b *testing.B) {
	cfg := experiments.Fig9bConfig{Models: 8, ValidationSize: 200, Seed: 2}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TimeRatio[0], "time-ratio")
		b.ReportMetric(res.LoCRatio[0], "loc-ratio")
	}
}

func BenchmarkFigure9cTailLatency(b *testing.B) {
	cfg := experiments.Fig9cConfig{Requests: 5000, Seed: 3}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9c(cfg)
		if err != nil {
			b.Fatal(err)
		}
		base, scale, sw, _ := res.P90s()
		b.ReportMetric(base/sw, "p90-win-switching")
		b.ReportMetric(base/scale, "p90-win-scaleout")
	}
}

func BenchmarkFigure10SegmentBounds(b *testing.B) {
	cfg := experiments.DefaultFig10Config()
	cfg.Samples = 200
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sound := 0.0
		if res.Sound(0.02) {
			sound = 1
		}
		b.ReportMetric(sound, "bound-sound")
	}
}

func BenchmarkTable1WholeModelBounds(b *testing.B) {
	cfg := experiments.Table1Config{Sizes: []int{100, 1000}, Repeats: 5, Seed: 4}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		c := res.Cells[res.Models[0]]
		b.ReportMetric(c[len(c)-1].Bound, "bound%@1k")
		b.ReportMetric(c[len(c)-1].AvgActual, "actual%@1k")
	}
}

func BenchmarkFigure11ModelDiff(b *testing.B) {
	cfg := experiments.DefaultFig11Config()
	cfg.Draws = 8
	cfg.Samples = 150
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f := res.Families[0]
		b.ReportMetric(f.ModelDiff.MaxV-f.ModelDiff.MinV, "modeldiff-spread")
		b.ReportMetric(f.BoundedFloor, "sommelier-floor")
	}
}

func BenchmarkFigure12aResourceVariation(b *testing.B) {
	cfg := experiments.Fig12aConfig{Widths: []int{32, 64}, Seed: 5}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Variation[0]*100, "mem-variation%")
	}
}

func BenchmarkFigure12bCrossSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12b(experiments.Fig12bConfig{Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		crossWin := 0.0
		if res.BestSeries == "efficientish" {
			crossWin = 1
		}
		b.ReportMetric(crossWin, "cross-series-win")
	}
}

func BenchmarkFigure13TopKOutside(b *testing.B) {
	cfg := experiments.DefaultFig13Config()
	cfg.Catalog.NumSeries = 6
	cfg.Catalog.NumTrunks = 2
	cfg.Catalog.MinPerSeries, cfg.Catalog.MaxPerSeries = 3, 4
	cfg.SeriesCounts = []int{6}
	cfg.Repeats = 1
	cfg.ValidationSize = 150
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Top5Outside[0]*100, "top5-outside%")
	}
}

func BenchmarkTable2EquivLatency(b *testing.B) {
	// Reduced-scale model sizes (see Table2Config.Scale); use
	// cmd/sommbench -table2scale 1.0 for the paper's 62M..340M sizes.
	cfg := experiments.Table2Config{Scale: 0.002, Seed: 7}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[len(res.Rows)-1].WholeMS, "bert-whole-ms")
	}
}

func BenchmarkTable3QueryLatency(b *testing.B) {
	cfg := experiments.Table3Config{Sizes: []int{100, 10000}, Queries: 5, Seed: 8}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.BothMS[len(res.BothMS)-1], "both-ms@10k")
	}
}

func BenchmarkTable4IndexMemory(b *testing.B) {
	cfg := experiments.Table4Config{Sizes: []int{10, 10000}, Seed: 9}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ResourceMB[len(res.ResourceMB)-1], "resource-MB@10k")
		b.ReportMetric(res.SemanticMB[len(res.SemanticMB)-1], "semantic-MB@10k")
	}
}

func BenchmarkAblationBoundOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationBound(10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TestingSpread, "testing-spread")
		b.ReportMetric(float64(res.FloorViolations), "floor-violations")
	}
}

func BenchmarkAblationSampledInsertion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSampling(11)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IndexMS[0], "index-ms@k2")
		b.ReportMetric(res.IndexMS[len(res.IndexMS)-1], "index-ms@full")
	}
}

func BenchmarkAblationLSHvsLinear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationLSH(12)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Sizes) - 1
		b.ReportMetric(res.LSHMS[last], "lsh-ms@100k")
		b.ReportMetric(res.LinearMS[last], "linear-ms@100k")
	}
}

func BenchmarkAblationSegmentVsWhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSegment(13)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SegmentLevel-res.WholeLevel, "segment-gain")
	}
}

func BenchmarkAblationSwitchCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSwitchCost(14)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.P99[1]-res.P99[0], "fg-swap-p99-cost")
		b.ReportMetric(res.P99[3]-res.P99[0], "bg-swap-p99-cost")
	}
}
