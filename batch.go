package sommelier

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"sommelier/internal/catalog"
	"sommelier/internal/query"
)

// QueryBatchContext parses and executes a batch of query strings,
// returning per-query results and errors aligned by index. The batch
// amortizes the fixed per-query costs across its members:
//
//   - one catalog snapshot acquisition — every query answers against
//     the same consistent view, exactly as one serial loop over a
//     quiescent catalog would;
//   - one parse pass over all strings before any execution starts;
//   - one shared reprofile memo, so an EXEC-spec model that is a
//     candidate of many queries is loaded and measured once;
//   - pooled stage-2 scratch buffers.
//
// Queries execute on a bounded worker pool (WithQueryWorkers, default
// GOMAXPROCS) with a per-query span under one query_batch root span.
// Execution order never changes answers: results are byte-identical to
// running the same queries serially through QueryContext against an
// unchanging catalog, at any worker count. Cancelling ctx aborts the
// in-flight queries mid-candidate-loop; queries that were cancelled
// report the context error in their slot.
func (e *Engine) QueryBatchContext(ctx context.Context, qs []string) ([][]Result, []error) {
	ctx, root := e.obs.StartSpan(ctx, "query_batch", fmt.Sprintf("%d queries", len(qs)))
	defer func() { e.obs.Histogram("query_batch_total_ms").Observe(root.End()) }()
	asts := make([]*query.Query, len(qs))
	errs := make([]error, len(qs))
	_, span := e.obs.StartSpan(ctx, "parse", "")
	for i, s := range qs {
		asts[i], errs[i] = query.Parse(s)
	}
	e.obs.Histogram("query_parse_ms").Observe(span.End())
	results := e.runBatch(ctx, asts, errs)
	return results, errs
}

// QueryBatchASTContext executes a batch of already-parsed queries with
// the same shared-snapshot, shared-memo, bounded-pool semantics as
// QueryBatchContext. A nil query yields a per-slot error; it does not
// abort the rest of the batch.
func (e *Engine) QueryBatchASTContext(ctx context.Context, qs []*query.Query) ([][]Result, []error) {
	ctx, root := e.obs.StartSpan(ctx, "query_batch", fmt.Sprintf("%d queries", len(qs)))
	defer func() { e.obs.Histogram("query_batch_total_ms").Observe(root.End()) }()
	errs := make([]error, len(qs))
	results := e.runBatch(ctx, qs, errs)
	return results, errs
}

// runBatch executes the parsed queries of one batch. errs arrives with
// parse failures already recorded; those slots are skipped. Each
// worker writes only its own slot, so no result-side synchronization
// is needed beyond the WaitGroup join.
func (e *Engine) runBatch(ctx context.Context, qs []*query.Query, errs []error) [][]Result {
	results := make([][]Result, len(qs))
	snap := e.cat.Snapshot()
	memo := catalog.NewReprofileMemo()
	sem := make(chan struct{}, e.queryWorkers(len(qs)))
	var wg sync.WaitGroup
	for i := range qs {
		if errs[i] != nil {
			e.obs.Counter("query_errors_total").Inc()
			continue
		}
		if qs[i] == nil {
			errs[i] = fmt.Errorf("sommelier: nil query at batch index %d", i)
			e.obs.Counter("query_errors_total").Inc()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			qctx, span := e.obs.StartSpan(ctx, "query", fmt.Sprintf("batch[%d]", i))
			results[i], errs[i] = e.queryOne(qctx, snap, qs[i], memo)
			e.obs.Histogram("query_total_ms").Observe(span.End())
			if errs[i] != nil {
				e.obs.Counter("query_errors_total").Inc()
			}
		}(i)
	}
	wg.Wait()
	return results
}

// queryWorkers resolves the batch pool size: the configured
// WithQueryWorkers value (default GOMAXPROCS), never more than the
// batch has queries, never less than one.
func (e *Engine) queryWorkers(batch int) int {
	n := e.cfg.queryWorkers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > batch {
		n = batch
	}
	if n < 1 {
		n = 1
	}
	return n
}
