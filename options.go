package sommelier

import (
	"sommelier/internal/catalog"
	"sommelier/internal/dataset"
	"sommelier/internal/equiv"
	"sommelier/internal/obs"
	"sommelier/internal/resource"
)

// Option configures an Engine. Options compose left to right; later
// options win. This is the engine's primary configuration surface — the
// legacy Options struct converts into a sequence of these and accepts
// no new knobs (enforced by sommlint's optcheck).
type Option func(*engineConfig)

// engineConfig is the resolved engine configuration: the catalog's
// config plus the engine-level observer handle.
type engineConfig struct {
	cat catalog.Config
	obs *obs.Observer
	// queryWorkers bounds QueryBatchContext's execution pool; 0 means
	// runtime.GOMAXPROCS(0).
	queryWorkers int
}

// WithSeed sets the seed driving every random choice; equal seeds give
// identical indexes and results, at any worker count.
func WithSeed(seed uint64) Option {
	return func(c *engineConfig) { c.cat.Seed = seed }
}

// WithValidationSize sets the per-task probe dataset size used for
// empirical equivalence measurement (default 300).
func WithValidationSize(n int) Option {
	return func(c *engineConfig) { c.cat.ValidationSize = n }
}

// WithBound selects the generalization-bound mode: on (default) for
// dataset-independent scores, off for testing-only scores.
func WithBound(mode equiv.BoundMode) Option {
	return func(c *engineConfig) { c.cat.Bound = mode }
}

// WithSegments toggles model-segment analysis during indexing — the
// slower, higher-recall mode (§4.2). Off by default.
func WithSegments(enabled bool) Option {
	return func(c *engineConfig) { c.cat.Segments = enabled }
}

// WithSegmentMinLen sets the minimum common-segment length considered.
func WithSegmentMinLen(n int) Option {
	return func(c *engineConfig) { c.cat.SegmentMinLen = n }
}

// WithSampleSize overrides the semantic index's pairwise sample count
// (the paper uses 5).
func WithSampleSize(n int) Option {
	return func(c *engineConfig) { c.cat.SampleSize = n }
}

// WithIndexWorkers bounds the indexing pipeline's concurrency: how many
// pairwise analyses and profile measurements run at once during
// Register and IndexAll. Zero means runtime.GOMAXPROCS(0). The worker
// count never changes indexing results — only how fast they arrive.
func WithIndexWorkers(n int) Option {
	return func(c *engineConfig) { c.cat.Workers = n }
}

// WithQueryWorkers bounds how many queries of one QueryBatchContext
// batch execute concurrently. Zero means runtime.GOMAXPROCS(0). The
// worker count never changes batch results — only how fast they
// arrive; every query still runs its own full pipeline against the
// batch's shared snapshot.
func WithQueryWorkers(n int) Option {
	return func(c *engineConfig) { c.queryWorkers = n }
}

// WithLatencyTable overrides the per-operator latency table.
func WithLatencyTable(t resource.LatencyTable) Option {
	return func(c *engineConfig) { c.cat.LatencyTable = t }
}

// WithCustomValidation uses the dataset instead of generated probe data
// for models whose input shape matches (the "custom" bound knob of
// §5.5).
func WithCustomValidation(d *dataset.Dataset) Option {
	return func(c *engineConfig) { c.cat.CustomValidation = d }
}

// WithObserver attaches an observability handle: the engine reports
// index-stage timings, query-stage spans, and worker occupancy through
// it, and daemons serve its snapshot at /v1/metrics. Without this
// option the engine creates a private wall-clock observer, so metrics
// are always available via Engine.Observer(); pass a shared observer to
// aggregate engine, hub, and serving metrics into one snapshot, or one
// with an obs.TickClock for deterministic trace output in tests.
func WithObserver(o *obs.Observer) Option {
	return func(c *engineConfig) { c.obs = o }
}

// options converts the legacy flat struct into the functional form.
// New knobs must NOT be added here (or to the struct — sommlint's
// optcheck freezes its field set); add a With… Option instead.
func (o Options) options() []Option {
	return []Option{
		WithSeed(o.Seed),
		WithValidationSize(o.ValidationSize),
		WithBound(o.Bound),
		WithSegments(o.Segments),
		WithSegmentMinLen(o.SegmentMinLen),
		WithSampleSize(o.SampleSize),
		WithIndexWorkers(o.IndexWorkers),
		WithLatencyTable(o.LatencyTable),
		WithCustomValidation(o.CustomValidation),
	}
}
