package sommelier

import (
	"fmt"
	"testing"

	"sommelier/internal/repo"
	"sommelier/internal/zoo"
)

// TestMixedRepositoryTaskSeparation indexes CV and NLP models in one
// repository — the paper's single-index-for-the-whole-repository design
// (§5.2) — and verifies the IO/type check (§4.1) keeps them apart: a
// query against a vision reference never returns a text model and vice
// versa, even at threshold zero.
func TestMixedRepositoryTaskSeparation(t *testing.T) {
	store := repo.NewInMemory()
	eng, err := New(store, Options{Seed: 31, ValidationSize: 200, SampleSize: 50})
	if err != nil {
		t.Fatal(err)
	}

	// CV side: a dense-residual base plus two variants.
	cv, err := zoo.DenseResidualNet(zoo.Config{Name: "cv-base", Seed: 1, Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	cvID, err := eng.Register(cv)
	if err != nil {
		t.Fatal(err)
	}
	cvIDs := map[string]bool{cvID: true}
	for i := 0; i < 2; i++ {
		v := zoo.Perturb(cv, fmt.Sprintf("cv-v%d", i), 0.05, uint64(i+2))
		id, err := eng.Register(v)
		if err != nil {
			t.Fatal(err)
		}
		cvIDs[id] = true
	}

	// NLP side: a text cohort.
	cohort, err := zoo.TextCohort(zoo.TextConfig{Seed: 9}, 2, 0.08, 11)
	if err != nil {
		t.Fatal(err)
	}
	nlpID, err := eng.Register(cohort.Teacher)
	if err != nil {
		t.Fatal(err)
	}
	nlpIDs := map[string]bool{nlpID: true}
	for _, m := range cohort.Models {
		id, err := eng.Register(m)
		if err != nil {
			t.Fatal(err)
		}
		nlpIDs[id] = true
	}

	// Vision queries stay in vision...
	res, err := eng.Query(fmt.Sprintf("SELECT CORR %q WITHIN 0%% PICK most_similar", cvID))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("vision query found nothing")
	}
	for _, r := range res {
		if nlpIDs[r.ID] {
			t.Fatalf("vision query returned text model %s", r.ID)
		}
	}
	// ...and text queries stay in text.
	res, err = eng.Query(fmt.Sprintf("SELECT CORR %q WITHIN 0%% PICK most_similar", nlpID))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("text query found nothing")
	}
	for _, r := range res {
		if cvIDs[r.ID] {
			t.Fatalf("text query returned vision model %s", r.ID)
		}
	}
	// The text cohort's internal correlation is visible.
	if res[0].Level < 0.7 {
		t.Fatalf("text cohort correlation too weak: %+v", res[0])
	}
}
