package sommelier

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"sommelier/internal/dataset"
	"sommelier/internal/graph"
	"sommelier/internal/query"
	"sommelier/internal/repo"
	"sommelier/internal/resource"
	"sommelier/internal/zoo"
)

// countingStore wraps a repository and counts Load calls — the expensive
// stage-2 operation the batch memo exists to deduplicate.
type countingStore struct {
	*repo.Repository
	loads atomic.Int64
}

func (c *countingStore) Load(id string) (*graph.Model, error) {
	c.loads.Add(1)
	return c.Repository.Load(id)
}

// newLadderOverStore mirrors newEngineWithLadder but over a caller-held
// store, so tests can build fresh engines over the same models.
func newLadderOverStore(t testing.TB, store Store) (*Engine, string) {
	t.Helper()
	eng, err := NewEngine(store, WithSeed(11), WithValidationSize(250))
	if err != nil {
		t.Fatal(err)
	}
	base, err := zoo.DenseResidualNet(zoo.Config{Name: "refnet", Seed: 1, Width: 32, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	refID, err := eng.Register(base)
	if err != nil {
		t.Fatal(err)
	}
	probes := dataset.RandomImages(300, base.InputShape, 42)
	for i, target := range []float64{0.03, 0.08, 0.2} {
		v, _, err := zoo.CalibratedVariant(base, "variant"+itoa(i), target, probes, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Register(v); err != nil {
			t.Fatal(err)
		}
	}
	big, err := zoo.Inflate(base, "bignet", 32, 96, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register(big); err != nil {
		t.Fatal(err)
	}
	return eng, refID
}

func batchTestWorkload(refID string) []string {
	return []string{
		fmt.Sprintf(`SELECT CORR %q WITHIN 85%% PICK most_similar`, refID),
		fmt.Sprintf(`SELECT CORR %q WITHIN 85%% ON memory <= 120%% PICK smallest`, refID),
		fmt.Sprintf(`SELECT CORR %q WITHIN 50%% PICK smallest`, refID),
		fmt.Sprintf(`SELECT CORR %q WITHIN 50%% ON flops <= 300%% EXEC batch=4 PICK fastest`, refID),
		fmt.Sprintf(`SELECT CORR %q WITHIN 85%% PICK most_similar`, refID), // duplicate of [0]
		`SELECT CORR "ghost@1" WITHIN 50%`,                                 // unknown reference
		`SELECT CORR`,                                                      // parse error
	}
}

// TestQueryBatchMatchesSerial pins the batch API's core contract: for a
// quiescent catalog, QueryBatchContext returns byte-identical results to
// a serial QueryContext loop over the same workload, at every worker
// count, with per-slot errors matching the serial errors.
func TestQueryBatchMatchesSerial(t *testing.T) {
	store := repo.NewInMemory()
	eng, refID := newLadderOverStore(t, store)
	ctx := context.Background()
	workload := batchTestWorkload(refID)

	serialResults := make([][]Result, len(workload))
	serialErrs := make([]error, len(workload))
	for i, q := range workload {
		serialResults[i], serialErrs[i] = eng.QueryContext(ctx, q)
	}
	if serialErrs[5] == nil || serialErrs[6] == nil {
		t.Fatalf("expected serial errors in slots 5 and 6, got %v / %v", serialErrs[5], serialErrs[6])
	}
	want := mustMarshal(t, serialResults)

	// The index state is reused via the persistence path so each
	// worker-count engine skips the pairwise analysis.
	var snap bytes.Buffer
	if err := eng.SaveIndexes(&snap); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		eng2, err := NewEngine(store, WithSeed(11), WithValidationSize(250), WithQueryWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng2.LoadIndexes(bytes.NewReader(snap.Bytes())); err != nil {
			t.Fatal(err)
		}
		results, errs := eng2.QueryBatchContext(ctx, workload)
		if len(results) != len(workload) || len(errs) != len(workload) {
			t.Fatalf("workers=%d: misaligned batch output: %d/%d", workers, len(results), len(errs))
		}
		for i := range workload {
			if (errs[i] == nil) != (serialErrs[i] == nil) {
				t.Fatalf("workers=%d slot %d: batch err %v, serial err %v", workers, i, errs[i], serialErrs[i])
			}
			if errs[i] != nil && errs[i].Error() != serialErrs[i].Error() {
				t.Fatalf("workers=%d slot %d: batch err %q, serial err %q",
					workers, i, errs[i], serialErrs[i])
			}
		}
		if got := mustMarshal(t, results); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: batch results diverge from serial:\n got %s\nwant %s", workers, got, want)
		}
	}
}

// TestQueryBatchSharesReprofileMemo pins the amortization claim: a batch
// of EXEC queries loads and re-measures each candidate model once, where
// the serial loop pays the full cost per query.
func TestQueryBatchSharesReprofileMemo(t *testing.T) {
	store := &countingStore{Repository: repo.NewInMemory()}
	eng, refID := newLadderOverStore(t, store)
	ctx := context.Background()
	q := fmt.Sprintf(`SELECT CORR %q WITHIN 50%% ON flops <= 300%% EXEC batch=4 PICK fastest`, refID)

	store.loads.Store(0)
	if _, err := eng.QueryContext(ctx, q); err != nil {
		t.Fatal(err)
	}
	perQuery := store.loads.Load()
	if perQuery == 0 {
		t.Fatal("EXEC query did not load any model; the memo test is vacuous")
	}

	const n = 8
	workload := make([]string, n)
	for i := range workload {
		workload[i] = q
	}
	store.loads.Store(0)
	_, errs := eng.QueryBatchContext(ctx, workload)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch slot %d: %v", i, err)
		}
	}
	if got := store.loads.Load(); got != perQuery {
		t.Fatalf("batch of %d identical EXEC queries loaded %d models, want %d (one memoized pass)",
			n, got, perQuery)
	}
}

// TestQueryContextCancellation pins that a cancelled context aborts the
// per-candidate stage-2 loop instead of grinding through it, in both the
// single-query and batch paths.
func TestQueryContextCancellation(t *testing.T) {
	store := repo.NewInMemory()
	eng, refID := newLadderOverStore(t, store)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	q := fmt.Sprintf(`SELECT CORR %q WITHIN 50%% PICK most_similar`, refID)
	if _, err := eng.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext with cancelled ctx: err = %v, want context.Canceled", err)
	}
	results, errs := eng.QueryBatchContext(ctx, []string{q, q})
	for i := range errs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("batch slot %d: err = %v, want context.Canceled", i, errs[i])
		}
		if results[i] != nil {
			t.Fatalf("batch slot %d: results returned despite cancellation", i)
		}
	}
}

// TestQueryCandidateMissingProfileSkipped pins the profileOf bugfix: an
// indexed candidate whose resource profile is missing is skipped, not
// ranked with a zero-valued profile it would trivially win PICK smallest
// with; a missing *reference* profile fails the query with ErrNoProfile.
func TestQueryCandidateMissingProfileSkipped(t *testing.T) {
	store := repo.NewInMemory()
	eng, refID := newLadderOverStore(t, store)
	victim := "variant0@1"

	results, err := eng.Query(fmt.Sprintf(`SELECT CORR %q WITHIN 50%% PICK smallest`, refID))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		if r.ID == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("setup: %s not in baseline results %v", victim, results)
	}

	dropProfile(t, eng, store, victim)
	results, err = eng.Query(fmt.Sprintf(`SELECT CORR %q WITHIN 50%% PICK smallest`, refID))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results at all after dropping one profile")
	}
	for _, r := range results {
		if r.ID == victim {
			t.Fatalf("profile-less candidate %s competed in ranking: %+v", victim, r)
		}
		if r.Profile.MemoryBytes == 0 {
			t.Fatalf("zero-valued profile leaked into results: %+v", r)
		}
	}
	top, err := eng.TopEquivalents(refID, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range top {
		if r.ID == victim {
			t.Fatalf("TopEquivalents returned profile-less candidate %s", victim)
		}
	}

	// A reference without a profile is an index inconsistency the query
	// must report, not paper over.
	dropProfile(t, eng, store, refID)
	if _, err := eng.Query(fmt.Sprintf(`SELECT CORR %q WITHIN 50%%`, refID)); !errors.Is(err, ErrNoProfile) {
		t.Fatalf("query with profile-less reference: err = %v, want ErrNoProfile", err)
	}
}

// dropProfile removes one model's resource profile through the
// persistence round trip — the only way index state legitimately
// re-enters an engine.
func dropProfile(t *testing.T, eng *Engine, store Store, id string) {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.SaveIndexes(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Profiles map[string]resource.Profile `json:"profiles"`
	}
	if err := json.Unmarshal(snap["resource"], &res); err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Profiles[id]; !ok {
		t.Fatalf("no profile for %s in snapshot", id)
	}
	delete(res.Profiles, id)
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	snap["resource"] = raw
	out, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadIndexes(bytes.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}

// TestQueryDuplicateConstraintsTakeTightest pins the budgetFrom bugfix:
// a metric bounded twice resolves to the tightest bound regardless of
// write order, and duplicate bounds answer exactly like the single
// tight bound.
func TestQueryDuplicateConstraintsTakeTightest(t *testing.T) {
	cs := []query.Constraint{
		{Metric: query.MetricMemory, Op: query.OpLE, Value: 100, Unit: query.UnitMB},
		{Metric: query.MetricMemory, Op: query.OpLT, Value: 50, Unit: query.UnitMB},
	}
	for _, order := range [][]query.Constraint{cs, {cs[1], cs[0]}} {
		b, err := budgetFrom(order, resource.Profile{})
		if err != nil {
			t.Fatal(err)
		}
		if b.MaxMemoryBytes != 50<<20 {
			t.Fatalf("budget = %d bytes, want the tighter 50MB regardless of order", b.MaxMemoryBytes)
		}
	}

	store := repo.NewInMemory()
	eng, refID := newLadderOverStore(t, store)
	single, err := eng.Query(fmt.Sprintf(`SELECT CORR %q WITHIN 50%% ON memory <= 120%% PICK smallest`, refID))
	if err != nil {
		t.Fatal(err)
	}
	want := mustMarshal(t, single)
	for _, q := range []string{
		fmt.Sprintf(`SELECT CORR %q WITHIN 50%% ON memory <= 120%% AND memory <= 500%% PICK smallest`, refID),
		fmt.Sprintf(`SELECT CORR %q WITHIN 50%% ON memory <= 500%% AND memory <= 120%% PICK smallest`, refID),
	} {
		dup, err := eng.Query(q)
		if err != nil {
			t.Fatalf("duplicate-bound query rejected: %v", err)
		}
		if got := mustMarshal(t, dup); !bytes.Equal(got, want) {
			t.Fatalf("duplicate bounds changed the answer:\n got %s\nwant %s", got, want)
		}
	}

	// Ranges — a lower and an upper bound on one metric — are the useful
	// case duplicate rejection used to outlaw.
	rng, err := eng.Query(fmt.Sprintf(`SELECT CORR %q WITHIN 50%% ON memory >= 10%% AND memory <= 120%% PICK smallest`, refID))
	if err != nil {
		t.Fatalf("range query rejected: %v", err)
	}
	if len(rng) == 0 {
		t.Fatal("range query returned nothing")
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
